// Fig. 11 regenerator: impact of the data transformation on MRE.
// Compares PMF, AMF(alpha = 1) (Box-Cox masked, linear normalization
// only), and AMF with the tuned alpha across matrix densities, for RT and
// TP. Expected ordering at every density: AMF < AMF(a=1) < PMF.
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const std::vector<std::string> approaches = {"PMF", "AMF(a=1)", "AMF"};
  std::cout << "=== Fig. 11: impact of data transformation (MRE, "
            << exp::Describe(scale) << ") ===\n\n";

  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
    common::TablePrinter table(
        {"density", "PMF", "AMF(a=1)", "AMF"});
    for (double density : scale.densities) {
      std::vector<std::string> row = {
          common::FormatFixed(100 * density, 0) + "%"};
      for (const std::string& name : approaches) {
        eval::ProtocolConfig cfg;
        cfg.density = density;
        cfg.rounds = scale.rounds;
        cfg.seed = scale.seed + static_cast<std::uint64_t>(997 * density);
        const auto res =
            eval::RunProtocol(slice, cfg, exp::MakeFactory(name, attr));
        row.push_back(common::FormatFixed(res.average.mre, 3));
      }
      table.AddRow(std::move(row));
    }
    std::cout << data::AttributeName(attr) << " MRE:\n";
    table.Print(std::cout);
  }
  std::cout << "expected: AMF < AMF(a=1) < PMF at every density (Box-Cox "
               "and the relative-error loss both matter).\n";
  return 0;
}

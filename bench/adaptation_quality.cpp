// Ablation A4: end-to-end adaptation quality (DESIGN.md extension).
//
// The paper's motivation made quantitative: run the Fig. 1/3 adaptation
// simulation under four policies and compare SLA-violation rate and mean
// response time. AMF-driven candidate selection should approach the oracle
// and clearly beat random/no adaptation.
#include <iostream>

#include "adapt/periodic_policy.h"
#include "adapt/simulation.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  data::SyntheticConfig dcfg;
  dcfg.users = 40;
  dcfg.services = 24;
  dcfg.slices = 48;
  dcfg.seed = exp::ScaleFromEnv().seed;
  const data::SyntheticQoSDataset dataset(dcfg);
  const double sla = 2.0;
  const std::size_t apps = 24;
  const std::size_t ticks = 48;
  std::cout << "=== A4: end-to-end adaptation quality (" << apps
            << " apps x " << ticks << " ticks, SLA "
            << common::FormatFixed(sla, 1) << "s) ===\n\n";

  // Initial bindings are spread across candidates per app so that every
  // candidate service has some working users -- the collaborative data the
  // prediction service learns from.
  auto make_workflow = [](std::size_t app_index) {
    adapt::Workflow wf({{"auth", {0, 1, 2, 3, 4, 5}},
                        {"inventory", {6, 7, 8, 9, 10, 11}},
                        {"shipping", {12, 13, 14, 15, 16, 17}},
                        {"payment", {18, 19, 20, 21, 22, 23}}});
    for (std::size_t i = 0; i < wf.num_tasks(); ++i) {
      const auto& cands = wf.task(i).candidates;
      wf.Rebind(i, cands[(app_index + 2 * i) % cands.size()]);
    }
    return wf;
  };

  common::TablePrinter table({"policy", "violation rate", "mean RT (s)",
                              "failures", "adaptations"});
  for (const char* policy_cstr :
       {"none", "random", "amf-predicted", "periodic+amf", "oracle"}) {
    const std::string policy_name = policy_cstr;
    adapt::Environment env(dataset, 900.0);
    // Outages on the initial bindings of two tasks mid-run.
    env.AddOutage({0, 8 * 900.0, 20 * 900.0});
    env.AddOutage({6, 24 * 900.0, 36 * 900.0});

    adapt::QoSPredictionService service;
    for (std::size_t u = 0; u < apps; ++u) {
      service.RegisterUser("app-" + std::to_string(u));
    }
    for (std::size_t s = 0; s < dataset.num_services(); ++s) {
      service.RegisterService("svc-" + std::to_string(s));
    }

    adapt::NoAdaptationPolicy none;
    adapt::RandomPolicy random(41);
    adapt::PredictedBestPolicy predicted(service);
    adapt::PeriodicReselectionPolicy periodic(predicted, 8);
    adapt::OraclePolicy oracle(env);
    adapt::AdaptationPolicy* policy = nullptr;
    if (policy_name == "none") policy = &none;
    if (policy_name == "random") policy = &random;
    if (policy_name == "amf-predicted") policy = &predicted;
    if (policy_name == "periodic+amf") policy = &periodic;
    if (policy_name == "oracle") policy = &oracle;

    adapt::SimulationConfig cfg;
    cfg.ticks = ticks;
    adapt::AdaptationSimulation sim(env, &service, cfg);
    for (std::size_t u = 0; u < apps; ++u) {
      sim.AddApplication(static_cast<data::UserId>(u), make_workflow(u),
                         *policy, sla);
    }
    sim.Run();
    const adapt::AppStats s = sim.TotalStats();
    table.AddRow({policy_name, common::FormatFixed(s.ViolationRate(), 4),
                  common::FormatFixed(s.MeanRt(), 3),
                  std::to_string(s.failures),
                  std::to_string(s.adaptations)});
  }
  table.Print(std::cout);
  std::cout << "expected ordering on violation rate: oracle <= "
               "amf-predicted < random < none. periodic+amf trades more "
               "rebinding churn (and some exploration violations) for the "
               "lowest mean RT.\n";
  return 0;
}

// Figs. 7 & 8 regenerator: raw vs Box-Cox-transformed value distributions.
//
// Fig. 7: raw RT (cut at 10 s) and TP (cut at 150 kbps) are heavily
// right-skewed. Fig. 8: after the Table-I data transformation (alpha =
// -0.007 / -0.05 + [0,1] normalization) the distributions are much closer
// to uniform/normal over [0, 1].
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "exp/approaches.h"
#include "exp/scale.h"
#include "transform/qos_transform.h"

namespace {

using namespace amf;

void Report(const std::string& title, const std::vector<double>& values,
            double lo, double hi, std::size_t bins) {
  common::Histogram h(lo, hi, bins);
  h.AddAll(values);
  std::cout << title << "\n" << h.ToAscii(46);
  std::vector<double> copy = values;
  std::cout << "  mean=" << common::FormatFixed(common::Mean(copy), 3)
            << " median=" << common::FormatFixed(common::Median(copy), 3)
            << " p90=" << common::FormatFixed(common::Percentile(copy, 90), 3)
            << "\n\n";
}

}  // namespace

int main() {
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== Figs. 7/8: data distributions (" << exp::Describe(scale)
            << ") ===\n\n";

  for (data::QoSAttribute attr : data::kAllAttributes) {
    const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
    std::vector<double> raw(slice.data().begin(), slice.data().end());

    const bool rt = attr == data::QoSAttribute::kResponseTime;
    // Paper cut-offs for visualization: RT 10 s, TP 150 kbps.
    Report("Fig. 7 raw " + data::AttributeName(attr) + " distribution:",
           raw, 0.0, rt ? 10.0 : 150.0, 20);

    const core::AmfConfig cfg = exp::AmfConfigFor(attr, 1);
    const transform::QoSTransform transform(cfg.transform);
    std::vector<double> transformed;
    transformed.reserve(raw.size());
    for (double v : raw) transformed.push_back(transform.Forward(v));
    Report("Fig. 8 transformed " + data::AttributeName(attr) +
               " distribution (alpha=" +
               common::FormatFixed(cfg.transform.alpha, 3) + "):",
           transformed, 0.0, 1.0, 20);
  }
  std::cout << "expected: Fig. 7 mass piles into the lowest bins (skew); "
               "Fig. 8 spreads across [0,1].\n";
  return 0;
}

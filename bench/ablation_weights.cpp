// Ablation A2: do adaptive weights matter? (DESIGN.md extension.)
//
// Two scenarios:
//  (1) steady state — accuracy at several densities with adaptive weights
//      on vs fixed w_u = w_s = 1/2 (expected: similar);
//  (2) churn — the Fig. 14 join scenario; adaptive weights should keep the
//      existing entities stable and let newcomers converge faster, so the
//      gap shows up in the post-join MREs.
#include <cmath>
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"

namespace {

using namespace amf;

struct ChurnResult {
  double existing_before;       // converged, pre-join
  double existing_at_join;      // right after the newcomers' first updates
  double new_at_join;
  double existing_after;        // after the replay budget
  double new_after;
};

ChurnResult RunChurn(const linalg::Matrix& slice, bool adaptive,
                     const exp::ExperimentScale& scale,
                     std::size_t epochs_after_join) {
  common::Rng rng(scale.seed);
  const data::TrainTestSplit split = data::SplitSlice(slice, 0.1, rng);
  const std::size_t old_users = slice.rows() * 8 / 10;
  const std::size_t old_services = slice.cols() * 8 / 10;
  auto is_old = [&](data::UserId u, data::ServiceId s) {
    return u < old_users && s < old_services;
  };

  core::AmfConfig cfg =
      exp::AmfConfigFor(data::QoSAttribute::kResponseTime, scale.seed);
  cfg.adaptive_weights = adaptive;
  core::AmfModel model(cfg);
  core::TrainerConfig tcfg;
  tcfg.expiry_seconds = 0.0;
  tcfg.seed = scale.seed;
  core::OnlineTrainer trainer(model, tcfg);

  auto mre = [&](bool old_block) {
    std::vector<double> rel;
    for (const auto& s : split.test) {
      if (is_old(s.user, s.service) != old_block) continue;
      if (!model.HasUser(s.user) || !model.HasService(s.service)) continue;
      if (s.value <= 0.0) continue;
      rel.push_back(std::abs(model.PredictRaw(s.user, s.service) - s.value) /
                    s.value);
    }
    return rel.empty() ? std::nan("") : common::Median(rel);
  };

  for (const auto& s : split.train.ToSamples()) {
    if (is_old(s.user, s.service)) trainer.Observe(s);
  }
  trainer.RunUntilConverged();
  ChurnResult r;
  r.existing_before = mre(true);

  for (const auto& s : split.train.ToSamples()) {
    if (!is_old(s.user, s.service)) trainer.Observe(s);
  }
  // The newcomers' first updates are where adaptive weights matter: every
  // un-converged newcomer drags on the converged factors it touches.
  trainer.ProcessIncoming();
  r.existing_at_join = mre(true);
  r.new_at_join = mre(false);

  for (std::size_t e = 0; e < epochs_after_join; ++e) trainer.ReplayEpoch();
  r.existing_after = mre(true);
  r.new_after = mre(false);
  return r;
}

}  // namespace

int main() {
  exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const linalg::Matrix slice =
      dataset->DenseSlice(data::QoSAttribute::kResponseTime, 0);
  std::cout << "=== Ablation A2: adaptive weights on/off ("
            << exp::Describe(scale) << ") ===\n\n";

  // (1) steady-state accuracy.
  common::TablePrinter steady(
      {"density", "AMF MRE", "AMF(fixed-w) MRE"});
  for (double density : {0.1, 0.3, 0.5}) {
    eval::ProtocolConfig cfg;
    cfg.density = density;
    cfg.rounds = scale.rounds;
    cfg.seed = scale.seed;
    const double adaptive =
        eval::RunProtocol(slice, cfg,
                          exp::MakeFactory(
                              "AMF", data::QoSAttribute::kResponseTime))
            .average.mre;
    const double fixed =
        eval::RunProtocol(slice, cfg,
                          exp::MakeFactory(
                              "AMF(fixed-w)",
                              data::QoSAttribute::kResponseTime))
            .average.mre;
    steady.AddRow(common::FormatFixed(100 * density, 0) + "%",
                  {adaptive, fixed});
  }
  std::cout << "(1) steady state:\n" << steady.ToString() << "\n";

  // (2) churn scenario: disruption of the existing entities at the moment
  // the newcomers' first (large-error) updates hit, and after 5 epochs.
  common::TablePrinter churn(
      {"weights", "existing pre-join", "existing at join", "new at join",
       "existing +5 epochs", "new +5 epochs"});
  const ChurnResult on = RunChurn(slice, true, scale, 5);
  const ChurnResult off = RunChurn(slice, false, scale, 5);
  churn.AddRow("adaptive",
               {on.existing_before, on.existing_at_join, on.new_at_join,
                on.existing_after, on.new_after});
  churn.AddRow("fixed 1/2",
               {off.existing_before, off.existing_at_join, off.new_at_join,
                off.existing_after, off.new_after});
  std::cout << "(2) churn (20% of users/services join mid-run):\n"
            << churn.ToString() << "\n";
  std::cout << "expected: comparable steady-state accuracy (the technique "
               "targets churn, not accuracy); at the join, adaptive "
               "weights disturb the existing entities' MRE less (compare "
               "'existing at join' vs 'existing pre-join' deltas).\n";
  return 0;
}

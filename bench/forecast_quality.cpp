// Ablation A5: working-service forecasting + proactive adaptation
// (DESIGN.md extension; the paper's related work [6][8] territory).
//
// Part 1 — one-step-ahead forecast accuracy of MA / SES / Holt / AR(p)
// over per-pair response-time series drawn from the dataset.
// Part 2 — reactive vs proactive (forecast-triggered) adaptation in the
// end-to-end simulation.
#include <iostream>

#include "adapt/proactive_policy.h"
#include "adapt/simulation.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exp/scale.h"
#include "forecast/autoregressive.h"
#include "forecast/evaluation.h"
#include "forecast/exponential_smoothing.h"
#include "forecast/moving_average.h"

int main() {
  using namespace amf;
  exp::ExperimentScale base = exp::SmallScale();
  base.users = 60;
  base.services = 200;
  base.slices = 64;
  const exp::ExperimentScale scale = exp::ApplyEnvOverrides(base);
  const auto dataset = exp::MakeDataset(scale);
  std::cout << "=== A5: working-service QoS forecasting ("
            << exp::Describe(scale) << ") ===\n\n";

  // Part 1: per-pair series, averaged metrics.
  std::vector<std::unique_ptr<forecast::Forecaster>> protos;
  protos.push_back(std::make_unique<forecast::MovingAverage>(1));
  protos.push_back(std::make_unique<forecast::MovingAverage>(4));
  protos.push_back(
      std::make_unique<forecast::SimpleExponentialSmoothing>(0.3));
  protos.push_back(std::make_unique<forecast::HoltLinear>(0.4, 0.1));
  protos.push_back(std::make_unique<forecast::AutoRegressive>(3, 32));

  common::Rng rng(scale.seed);
  const std::size_t kPairs = 200;
  std::vector<forecast::ForecastMetrics> sums(protos.size());
  std::vector<double> mre_sums(protos.size(), 0.0);
  std::vector<double> mae_sums(protos.size(), 0.0);
  for (std::size_t i = 0; i < kPairs; ++i) {
    const auto u = static_cast<data::UserId>(rng.Index(scale.users));
    const auto s = static_cast<data::ServiceId>(rng.Index(scale.services));
    std::vector<double> series;
    series.reserve(scale.slices);
    for (data::SliceId t = 0; t < scale.slices; ++t) {
      series.push_back(
          dataset->Value(data::QoSAttribute::kResponseTime, u, s, t));
    }
    for (std::size_t f = 0; f < protos.size(); ++f) {
      const forecast::ForecastMetrics m =
          forecast::EvaluateOneStep(*protos[f], series, 4);
      mre_sums[f] += m.mre;
      mae_sums[f] += m.mae;
    }
  }
  common::TablePrinter part1({"forecaster", "mean MRE", "mean MAE (s)"});
  for (std::size_t f = 0; f < protos.size(); ++f) {
    part1.AddRow(protos[f]->name(),
                 {mre_sums[f] / kPairs, mae_sums[f] / kPairs});
  }
  std::cout << "(1) one-step-ahead forecast accuracy over " << kPairs
            << " series:\n"
            << part1.ToString() << "\n";

  // Part 2: reactive vs proactive adaptation.
  data::SyntheticConfig dcfg;
  dcfg.users = 30;
  dcfg.services = 18;
  dcfg.slices = 48;
  dcfg.seed = scale.seed;
  const data::SyntheticQoSDataset adapt_dataset(dcfg);
  // Tight SLA: smooth QoS drift regularly crosses it, which is the regime
  // where forecasting the trend (Holt) can beat reacting to observations.
  const double sla = 1.2;

  common::TablePrinter part2(
      {"policy", "violation rate", "mean RT (s)", "adaptations"});
  for (int mode = 0; mode < 2; ++mode) {
    adapt::Environment env(adapt_dataset, 900.0);
    env.AddOutage({0, 10 * 900.0, 25 * 900.0});
    adapt::QoSPredictionService service;
    for (std::size_t u = 0; u < 20; ++u) {
      service.RegisterUser("u" + std::to_string(u));
    }
    for (std::size_t s = 0; s < adapt_dataset.num_services(); ++s) {
      service.RegisterService("s" + std::to_string(s));
    }
    adapt::PredictedBestPolicy reactive(service);
    forecast::HoltLinear holt(0.5, 0.3);  // trend-extrapolating
    adapt::ProactivePolicy proactive(reactive, holt);
    adapt::AdaptationPolicy& policy =
        mode == 0 ? static_cast<adapt::AdaptationPolicy&>(reactive)
                  : static_cast<adapt::AdaptationPolicy&>(proactive);

    adapt::SimulationConfig cfg;
    cfg.ticks = 48;
    adapt::AdaptationSimulation sim(env, &service, cfg);
    for (data::UserId u = 0; u < 20; ++u) {
      adapt::Workflow wf({{"a", {0, 1, 2, 3, 4, 5}},
                          {"b", {6, 7, 8, 9, 10, 11}},
                          {"c", {12, 13, 14, 15, 16, 17}}});
      for (std::size_t i = 0; i < wf.num_tasks(); ++i) {
        const auto& cands = wf.task(i).candidates;
        wf.Rebind(i, cands[(u + i) % cands.size()]);
      }
      sim.AddApplication(u, std::move(wf), policy, sla);
    }
    sim.Run();
    const adapt::AppStats st = sim.TotalStats();
    part2.AddRow({mode == 0 ? "reactive (amf)" : "proactive (holt+amf)",
                  common::FormatFixed(st.ViolationRate(), 4),
                  common::FormatFixed(st.MeanRt(), 3),
                  std::to_string(st.adaptations)});
  }
  std::cout << "(2) reactive vs proactive adaptation:\n"
            << part2.ToString() << "\n";
  std::cout << "expected: AR(3) best (or tied) on MRE. With this "
               "environment's noise-dominated drift the proactive policy "
               "is roughly on par with reactive (forecastable trends are "
               "mild); its value shows on trendier workloads.\n";
  return 0;
}

// Fig. 14 regenerator: scalability to new users and services.
//
// 80% of users/services train to convergence ("existing"); then the
// remaining 20% join and their observations stream in. MRE is tracked for
// (a) existing entities before the join, (b) existing entities after the
// join, and (c) the new entities — sampled after each replay epoch.
// Expected: the new entities' MRE falls rapidly toward the existing level
// while the existing entities' MRE stays flat (adaptive weights shield
// converged factors from un-converged newcomers).
#include <cmath>
#include <iostream>

#include "common/statistics.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "data/masking.h"
#include "exp/approaches.h"
#include "exp/scale.h"

int main() {
  using namespace amf;
  const exp::ExperimentScale scale = exp::ScaleFromEnv();
  const auto dataset = exp::MakeDataset(scale);
  const double density = 0.10;
  std::cout << "=== Fig. 14: scalability under churn (density 10%, "
            << exp::Describe(scale) << ") ===\n\n";

  const data::QoSAttribute attr = data::QoSAttribute::kResponseTime;
  const linalg::Matrix slice = dataset->DenseSlice(attr, 0);
  common::Rng rng(scale.seed);
  const data::TrainTestSplit split = data::SplitSlice(slice, density, rng);

  const std::size_t old_users = scale.users * 8 / 10;
  const std::size_t old_services = scale.services * 8 / 10;
  auto is_existing = [&](data::UserId u, data::ServiceId s) {
    return u < old_users && s < old_services;
  };

  core::AmfModel model(exp::AmfConfigFor(attr, scale.seed));
  core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.seed = scale.seed;
  core::OnlineTrainer trainer(model, cfg);

  auto mre_of = [&](bool existing) {
    std::vector<data::QoSSample> kept;
    for (const auto& s : split.test) {
      if (is_existing(s.user, s.service) != existing) continue;
      if (!model.HasUser(s.user) || !model.HasService(s.service)) continue;
      if (s.value <= 0.0) continue;
      kept.push_back(s);
    }
    if (kept.empty()) return std::nan("");
    const std::vector<double> pred = core::PredictSamplesRaw(model, kept);
    std::vector<double> rel(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) {
      rel[i] = std::abs(pred[i] - kept[i].value) / kept[i].value;
    }
    return common::Median(rel);
  };

  // Phase 1: existing 80% block only.
  for (const auto& s : split.train.ToSamples()) {
    if (is_existing(s.user, s.service)) trainer.Observe(s);
  }
  const std::size_t warm_epochs = trainer.RunUntilConverged();
  std::cout << "phase 1: existing entities converged in " << warm_epochs
            << " epochs; existing MRE before join = "
            << common::FormatFixed(mre_of(true), 3) << "\n\n";

  // Phase 2: the 20% join (paper: at t = 400s). Register them first with
  // random factors so the table shows the error they start from.
  model.EnsureUser(static_cast<data::UserId>(scale.users - 1));
  model.EnsureService(static_cast<data::ServiceId>(scale.services - 1));
  common::TablePrinter table(
      {"replay epoch after join", "existing MRE", "new MRE"});
  table.AddRow({"join (random init)", common::FormatFixed(mre_of(true), 3),
                common::FormatFixed(mre_of(false), 3)});

  for (const auto& s : split.train.ToSamples()) {
    if (!is_existing(s.user, s.service)) trainer.Observe(s);
  }
  trainer.ProcessIncoming();
  table.AddRow({"first updates", common::FormatFixed(mre_of(true), 3),
                common::FormatFixed(mre_of(false), 3)});
  const std::size_t epochs_to_track = 15;
  for (std::size_t e = 1; e <= epochs_to_track; ++e) {
    trainer.ReplayEpoch();
    table.AddRow({std::to_string(e), common::FormatFixed(mre_of(true), 3),
                  common::FormatFixed(mre_of(false), 3)});
  }
  table.Print(std::cout);
  std::cout << "expected: new-entity MRE drops sharply toward the existing "
               "level; existing MRE stays stable throughout.\n";
  return 0;
}

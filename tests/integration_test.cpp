// Cross-module integration tests: the full pipelines the benches rely on,
// at reduced scale.
#include <gtest/gtest.h>

#include "adapt/simulation.h"
#include "common/statistics.h"
#include "core/amf_predictor.h"
#include "core/model_io.h"
#include "eval/protocol.h"
#include "exp/approaches.h"
#include "exp/scale.h"
#include "stream/sample_stream.h"
#include "tests/test_util.h"

namespace amf {
namespace {

TEST(IntegrationTest, TableOneShapeHolds) {
  // Miniature Table I: AMF must beat UIPCC and PMF on MRE and NPRE at a
  // sparse density (the paper's headline result).
  const linalg::Matrix slice = testutil::SmallRtSlice(50, 200, 77);
  eval::ProtocolConfig cfg;
  cfg.density = 0.15;
  cfg.rounds = 2;
  cfg.seed = 31;

  auto run = [&](const std::string& name) {
    return eval::RunProtocol(
               slice, cfg,
               exp::MakeFactory(name, data::QoSAttribute::kResponseTime))
        .average;
  };
  const eval::Metrics uipcc = run("UIPCC");
  const eval::Metrics pmf = run("PMF");
  const eval::Metrics amf = run("AMF");

  EXPECT_LT(amf.mre, uipcc.mre);
  EXPECT_LT(amf.mre, pmf.mre);
  EXPECT_LT(amf.npre, uipcc.npre);
  EXPECT_LT(amf.npre, pmf.npre);
}

TEST(IntegrationTest, DataTransformationImprovesMre) {
  // Miniature Fig. 11: AMF with tuned alpha beats AMF(alpha=1).
  const linalg::Matrix slice = testutil::SmallRtSlice(50, 200, 78);
  eval::ProtocolConfig cfg;
  cfg.density = 0.2;
  cfg.rounds = 2;
  cfg.seed = 32;
  const double amf = eval::RunProtocol(
                         slice, cfg,
                         exp::MakeFactory("AMF",
                                          data::QoSAttribute::kResponseTime))
                         .average.mre;
  const double linear =
      eval::RunProtocol(
          slice, cfg,
          exp::MakeFactory("AMF(a=1)", data::QoSAttribute::kResponseTime))
          .average.mre;
  EXPECT_LT(amf, linear);
}

TEST(IntegrationTest, OnlineWarmStartIsCheaperThanColdStart) {
  // Miniature Fig. 13: at the start of slice 1 the warm model is already
  // close (its first-epoch training error is a fraction of the cold
  // model's first-epoch error on slice 0), so far less work is needed.
  exp::ExperimentScale scale = exp::SmallScale();
  scale.users = 30;
  scale.services = 100;
  scale.slices = 3;
  const auto dataset = exp::MakeDataset(scale);

  stream::StreamConfig stream_cfg;
  stream_cfg.density = 0.2;
  stream_cfg.seed = 5;
  const stream::SampleStream stream(*dataset, stream_cfg);

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::TrainerConfig trainer_cfg;
  trainer_cfg.expiry_seconds = 900.0;
  core::OnlineTrainer trainer(model, trainer_cfg);

  // Cold error: prediction MRE on slice 0's observations before any
  // training (random factors).
  model.EnsureUser(static_cast<data::UserId>(dataset->num_users() - 1));
  model.EnsureService(
      static_cast<data::ServiceId>(dataset->num_services() - 1));
  auto mre_on = [&](const std::vector<data::QoSSample>& samples) {
    std::vector<double> rel;
    for (const auto& s : samples) {
      rel.push_back(std::abs(model.PredictRaw(s.user, s.service) - s.value) /
                    s.value);
    }
    return common::Median(rel);
  };
  const std::vector<data::QoSSample> slice0 = stream.Slice(0);
  const double cold_mre = mre_on(slice0);

  // Train slice 0 to convergence.
  trainer.AdvanceTime(dataset->SliceTimestamp(0));
  for (const auto& s : slice0) trainer.Observe(s);
  trainer.RunUntilConverged();

  // Warm error: prediction MRE on slice 1's observations BEFORE they are
  // trained on. The warm model only has to track drift, not learn from
  // scratch, which is why its per-slice convergence time collapses.
  const std::vector<data::QoSSample> slice1 = stream.Slice(1);
  const double warm_mre = mre_on(slice1);
  EXPECT_LT(warm_mre, 0.5 * cold_mre);
}

TEST(IntegrationTest, ChurnScenarioNewEntitiesCatchUp) {
  // Miniature Fig. 14.
  const linalg::Matrix slice = testutil::SmallRtSlice(40, 120, 80);
  common::Rng rng(3);
  const data::TrainTestSplit split = data::SplitSlice(slice, 0.2, rng);
  const std::size_t old_users = 32, old_services = 96;  // 80%

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  core::OnlineTrainer trainer(model, cfg);

  auto is_old = [&](const data::QoSSample& s) {
    return s.user < old_users && s.service < old_services;
  };
  for (const auto& s : split.train.ToSamples()) {
    if (is_old(s)) trainer.Observe(s);
  }
  trainer.RunUntilConverged();

  auto mre = [&](bool old_block) {
    std::vector<double> rel;
    for (const auto& s : split.test) {
      if (is_old(s) != old_block) continue;
      if (!model.HasUser(s.user) || !model.HasService(s.service)) continue;
      rel.push_back(std::abs(model.PredictRaw(s.user, s.service) - s.value) /
                    s.value);
    }
    return common::Median(rel);
  };
  const double existing_before = mre(true);

  for (const auto& s : split.train.ToSamples()) {
    if (!is_old(s)) trainer.Observe(s);
  }
  trainer.ProcessIncoming();
  const double new_at_join = mre(false);
  // Fixed replay budget (RunUntilConverged can stall early here: the mean
  // epoch error is dominated by the already-converged 80% block).
  for (int e = 0; e < 30; ++e) trainer.ReplayEpoch();
  const double new_after = mre(false);
  const double existing_after = mre(true);

  // New entities improve; existing stay roughly stable.
  EXPECT_LT(new_after, 0.95 * new_at_join);
  EXPECT_LT(existing_after, existing_before * 1.5 + 0.05);
}

TEST(IntegrationTest, ModelSurvivesSerializationMidStream) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  core::AmfPredictor amf(core::MakeResponseTimeConfig(2));
  amf.Fit(split.train);

  std::stringstream ss;
  core::SaveModel(ss, amf.model());
  core::AmfModel restored = core::LoadModel(ss);

  // The restored model keeps training online and matches the original's
  // predictions initially.
  for (std::size_t i = 0; i < 10 && i < split.test.size(); ++i) {
    const auto& s = split.test[i];
    EXPECT_DOUBLE_EQ(restored.PredictRaw(s.user, s.service),
                     amf.Predict(s.user, s.service));
  }
  restored.OnlineUpdate(0, 0, 1.0);
}

TEST(IntegrationTest, AdaptationWithAmfBeatsNoAdaptation) {
  data::SyntheticConfig dcfg;
  dcfg.users = 10;
  dcfg.services = 12;
  dcfg.slices = 16;
  dcfg.seed = 9;
  const data::SyntheticQoSDataset dataset(dcfg);
  const double sla = 1.5;

  auto run = [&](bool use_amf) {
    adapt::Environment env(dataset, 900.0);
    env.AddOutage({0, 2 * 900.0, 9 * 900.0});
    adapt::QoSPredictionService service;
    for (int u = 0; u < 6; ++u) {
      service.RegisterUser("u" + std::to_string(u));
    }
    for (int s = 0; s < 12; ++s) {
      service.RegisterService("s" + std::to_string(s));
    }
    adapt::NoAdaptationPolicy none;
    adapt::PredictedBestPolicy predicted(service);
    adapt::AdaptationPolicy& policy =
        use_amf ? static_cast<adapt::AdaptationPolicy&>(predicted)
                : static_cast<adapt::AdaptationPolicy&>(none);
    adapt::SimulationConfig scfg;
    scfg.ticks = 16;
    adapt::AdaptationSimulation sim(env, &service, scfg);
    for (data::UserId u = 0; u < 6; ++u) {
      sim.AddApplication(u, adapt::Workflow({{"t1", {0, 1, 2, 3}},
                                             {"t2", {4, 5, 6, 7}}}),
                         policy, sla);
    }
    sim.Run();
    return sim.TotalStats();
  };

  const adapt::AppStats with_amf = run(true);
  const adapt::AppStats without = run(false);
  EXPECT_LT(with_amf.violations, without.violations);
  EXPECT_GT(with_amf.adaptations, 0u);
}

}  // namespace
}  // namespace amf

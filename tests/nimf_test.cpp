#include "cf/nimf.h"

#include <gtest/gtest.h>

#include "cf/pmf.h"
#include "common/check.h"
#include "tests/test_util.h"

namespace amf::cf {
namespace {

TEST(NimfTest, Name) { EXPECT_EQ(Nimf().name(), "NIMF"); }

TEST(NimfTest, InvalidConfigThrows) {
  NimfConfig cfg;
  cfg.rank = 0;
  EXPECT_THROW(Nimf{cfg}, common::CheckError);
  NimfConfig cfg2;
  cfg2.alpha = 1.5;
  EXPECT_THROW(Nimf{cfg2}, common::CheckError);
  NimfConfig cfg3;
  cfg3.learn_rate = 0.0;
  EXPECT_THROW(Nimf{cfg3}, common::CheckError);
}

TEST(NimfTest, PredictBeforeFitThrows) {
  Nimf nimf;
  EXPECT_THROW(nimf.Predict(0, 0), common::CheckError);
}

TEST(NimfTest, EmptyTrainingSetThrows) {
  Nimf nimf;
  data::SparseMatrix empty(2, 2);
  EXPECT_THROW(nimf.Fit(empty), common::CheckError);
}

TEST(NimfTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  Nimf nimf;
  nimf.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(nimf, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
}

TEST(NimfTest, ComparableToPmfOnMae) {
  const linalg::Matrix slice = testutil::SmallRtSlice(40, 120, 55);
  const data::TrainTestSplit split = testutil::Split(slice, 0.2);
  Nimf nimf;
  nimf.Fit(split.train);
  Pmf pmf;
  pmf.Fit(split.train);
  const double nimf_mae = eval::EvaluatePredictor(nimf, split.test).mae;
  const double pmf_mae = eval::EvaluatePredictor(pmf, split.test).mae;
  EXPECT_LT(nimf_mae, 1.25 * pmf_mae);  // same family, similar accuracy
}

TEST(NimfTest, AlphaOneReducesToPlainMf) {
  // alpha = 1 removes the neighborhood term entirely; predictions should
  // stay finite and sensible.
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  NimfConfig cfg;
  cfg.alpha = 1.0;
  Nimf nimf(cfg);
  nimf.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(nimf, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
}

TEST(NimfTest, PredictionsWithinObservedRange) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  Nimf nimf;
  nimf.Fit(split.train);
  double lo = 1e300, hi = -1e300;
  for (const auto& e : split.train.ToSamples()) {
    lo = std::min(lo, e.value);
    hi = std::max(hi, e.value);
  }
  for (const auto& s : split.test) {
    const double p = nimf.Predict(s.user, s.service);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(NimfTest, DeterministicInSeed) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  NimfConfig cfg;
  cfg.seed = 7;
  Nimf a(cfg), b(cfg);
  a.Fit(split.train);
  b.Fit(split.train);
  for (std::size_t i = 0; i < 20 && i < split.test.size(); ++i) {
    const auto& s = split.test[i];
    EXPECT_DOUBLE_EQ(a.Predict(s.user, s.service),
                     b.Predict(s.user, s.service));
  }
}

}  // namespace
}  // namespace amf::cf

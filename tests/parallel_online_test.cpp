// Parallel sharded replay epochs in OnlineTrainer: parity with the serial
// trainer, determinism per shard count, and Observe backpressure.
#include "core/online_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/statistics.h"
#include "core/amf_model.h"
#include "tests/test_util.h"

namespace amf::core {
namespace {

AmfModel RegisteredModel(std::size_t users, std::size_t services,
                         std::uint64_t seed = 2) {
  AmfModel m(MakeResponseTimeConfig(seed));
  m.EnsureUser(static_cast<data::UserId>(users - 1));
  m.EnsureService(static_cast<data::ServiceId>(services - 1));
  return m;
}

double TestMre(const AmfModel& m, const data::TrainTestSplit& split) {
  std::vector<double> rel;
  for (const auto& s : split.test) {
    rel.push_back(std::abs(m.PredictRaw(s.user, s.service) - s.value) /
                  s.value);
  }
  return common::Median(rel);
}

TEST(ParallelOnlineTest, ParityWithSerialAcrossThreadCounts) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 90, 5);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  const std::vector<data::QoSSample> samples = split.train.ToSamples();

  // Serial reference: the bit-deterministic Algorithm-1 loop. Both sides
  // get a tight convergence criterion so they stop near the same fixed
  // point rather than wherever the stall detector happened to fire.
  TrainerConfig scfg;
  scfg.expiry_seconds = 0.0;
  scfg.convergence_tol = 1e-3;
  scfg.convergence_patience = 3;
  AmfModel ser_model = RegisteredModel(30, 90, 3);
  OnlineTrainer ser(ser_model, scfg);
  for (const auto& s : samples) ser.Observe(s);
  ser.RunUntilConverged();
  const double ser_mre = TestMre(ser_model, split);
  ASSERT_TRUE(std::isfinite(ser_mre));

  // Sharded parallel replay at every thread count in the acceptance
  // matrix must land within 2% relative MRE of the serial trainer.
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    AmfModel par_model = RegisteredModel(30, 90, 3);
    TrainerConfig pcfg = scfg;
    pcfg.replay_threads = threads;
    OnlineTrainer par(par_model, pcfg);
    for (const auto& s : samples) par.Observe(s);
    par.RunUntilConverged();
    const double par_mre = TestMre(par_model, split);
    ASSERT_TRUE(std::isfinite(par_mre)) << "threads=" << threads;
    EXPECT_LE(std::abs(par_mre - ser_mre) / ser_mre, 0.02)
        << "threads=" << threads << " parallel MRE " << par_mre
        << " vs serial " << ser_mre;
  }
}

TEST(ParallelOnlineTest, DeterministicPerShardCount) {
  // Each shard replays its partition in an order drawn from a persistent
  // per-shard RNG, so replay order is a function of (seed, shard count)
  // alone. With shard-disjoint services (each user here calls its own
  // private services, so a shard exclusively owns every row it touches)
  // there is no cross-shard interleaving at all, and the result must be
  // bitwise identical across worker counts and repeated runs.
  constexpr std::size_t kUsers = 16;
  constexpr std::size_t kServicesPerUser = 6;
  std::vector<data::QoSSample> samples;
  common::Rng gen(31);
  for (data::UserId u = 0; u < kUsers; ++u) {
    for (std::size_t r = 0; r < kServicesPerUser; ++r) {
      const auto s = static_cast<data::ServiceId>(u * kServicesPerUser + r);
      samples.push_back({0, u, s, gen.LogNormal(-0.2, 0.8), 0.0});
    }
  }

  auto run = [&](std::size_t threads, std::size_t shards) {
    AmfModel m = RegisteredModel(kUsers, kUsers * kServicesPerUser, 4);
    TrainerConfig cfg;
    cfg.expiry_seconds = 0.0;
    cfg.replay_threads = threads;
    cfg.replay_shards = shards;
    OnlineTrainer t(m, cfg);
    for (const auto& s : samples) t.Observe(s);
    t.ProcessIncoming();
    double last = 0.0;
    for (int e = 0; e < 3; ++e) last = t.ReplayEpoch().value();
    return last;
  };

  const double a = run(2, 4);
  const double b = run(2, 4);
  EXPECT_DOUBLE_EQ(a, b) << "same (threads, shards) must be reproducible";

  const double c = run(4, 4);
  EXPECT_DOUBLE_EQ(a, c)
      << "shard count, not thread count, determines replay order";

  // A different shard count partitions (and therefore orders) the replay
  // differently — expected to diverge bitwise, though quality-equivalent.
  const double d = run(2, 2);
  EXPECT_TRUE(std::isfinite(d));
}

TEST(ParallelOnlineTest, ParallelEpochAppliesEveryStoredSampleOnce) {
  AmfModel m = RegisteredModel(6, 12, 5);
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.replay_threads = 4;
  OnlineTrainer t(m, cfg);
  std::vector<data::QoSSample> samples;
  for (data::UserId u = 0; u < 6; ++u) {
    for (data::ServiceId s = 0; s < 12; ++s) {
      samples.push_back({0, u, s, 0.4 + 0.05 * u, 0.0});
    }
  }
  for (const auto& s : samples) t.Observe(s);
  t.ProcessIncoming();
  const std::uint64_t after_ingest = m.updates();
  EXPECT_EQ(after_ingest, samples.size());
  t.ReplayEpoch();
  EXPECT_EQ(m.updates(), after_ingest + samples.size());
}

TEST(ParallelOnlineTest, ParallelEpochExpiresStaleSamples) {
  AmfModel m = RegisteredModel(4, 4, 5);
  TrainerConfig cfg;
  cfg.expiry_seconds = 100.0;
  cfg.replay_threads = 2;
  OnlineTrainer t(m, cfg);
  // Two fresh samples, two that will be stale at replay time.
  t.Observe({0, 0, 0, 0.5, 0.0});
  t.Observe({0, 1, 1, 0.5, 0.0});
  t.Observe({0, 2, 2, 0.5, 890.0});
  t.Observe({0, 3, 3, 0.5, 890.0});
  t.AdvanceTime(900.0);
  t.ProcessIncoming();
  ASSERT_EQ(t.store().size(), 4u);
  t.ReplayEpoch();  // epoch barrier applies the deferred removals
  EXPECT_EQ(t.store().size(), 2u);
  EXPECT_TRUE(t.store().Get(2, 2).has_value());
  EXPECT_TRUE(t.store().Get(3, 3).has_value());
  EXPECT_FALSE(t.store().Get(0, 0).has_value());
  EXPECT_FALSE(t.store().Get(1, 1).has_value());
}

TEST(ParallelOnlineTest, ObserveBackpressureDropsAndCounts) {
  AmfModel m = RegisteredModel(2, 2, 5);
  TrainerConfig cfg;
  cfg.max_incoming = 10;
  cfg.validate_ingest = false;
  OnlineTrainer t(m, cfg);
  for (int i = 0; i < 25; ++i) t.Observe({0, 0, 0, 0.5, 0.0});
  EXPECT_EQ(t.Stats().dropped_on_overflow, 15u);
  EXPECT_EQ(t.ProcessIncoming(), 10u);
  // Queue drained: capacity is available again.
  t.Observe({0, 1, 1, 0.5, 0.0});
  EXPECT_EQ(t.Stats().dropped_on_overflow, 15u);
  EXPECT_EQ(t.ProcessIncoming(), 1u);
}

TEST(ParallelOnlineTest, UnboundedQueueWhenCapIsZero) {
  AmfModel m = RegisteredModel(2, 2, 5);
  TrainerConfig cfg;
  cfg.max_incoming = 0;
  cfg.validate_ingest = false;
  OnlineTrainer t(m, cfg);
  for (int i = 0; i < 100000; ++i) t.Observe({0, 0, 0, 0.5, 0.0});
  EXPECT_EQ(t.Stats().dropped_on_overflow, 0u);
  EXPECT_EQ(t.ProcessIncoming(), 100000u);
}

TEST(ParallelOnlineTest, GuardedSerialPathMatchesQuality) {
  // guarded_updates routes the serial loop through OnlineUpdateGuarded;
  // the math is identical, so results must be bitwise equal to the
  // unguarded serial trainer.
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 40, 9);
  const std::vector<data::QoSSample> samples =
      testutil::Split(slice, 0.3).train.ToSamples();

  auto run = [&](bool guarded) {
    AmfModel m = RegisteredModel(15, 40, 6);
    TrainerConfig cfg;
    cfg.expiry_seconds = 0.0;
    cfg.guarded_updates = guarded;
    OnlineTrainer t(m, cfg);
    for (const auto& s : samples) t.Observe(s);
    t.RunUntilConverged();
    return t.last_epoch_error();
  };
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(ParallelOnlineTest, ShardsDefaultToFourTimesThreads) {
  // replay_shards = 0 resolves to 4x threads internally; just verify the
  // epoch works and improves error with the default.
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50, 3);
  const std::vector<data::QoSSample> samples =
      testutil::Split(slice, 0.3).train.ToSamples();
  AmfModel m = RegisteredModel(20, 50, 4);
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.replay_threads = 2;
  cfg.replay_shards = 0;
  OnlineTrainer t(m, cfg);
  for (const auto& s : samples) t.Observe(s);
  t.ProcessIncoming();
  const double first = t.ReplayEpoch().value();
  double last = first;
  for (int e = 0; e < 10; ++e) last = t.ReplayEpoch().value();
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace amf::core

#include "core/amf_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "linalg/vector_ops.h"
#include "transform/qos_transform.h"

namespace amf::core {
namespace {

AmfConfig TestConfig() {
  AmfConfig c = MakeResponseTimeConfig(/*seed=*/3);
  return c;
}

TEST(AmfConfigTest, PaperDefaults) {
  const AmfConfig rt = MakeResponseTimeConfig();
  EXPECT_EQ(rt.rank, 10u);
  EXPECT_DOUBLE_EQ(rt.learn_rate, 0.8);
  EXPECT_DOUBLE_EQ(rt.lambda_user, 0.001);
  EXPECT_DOUBLE_EQ(rt.beta, 0.3);
  EXPECT_DOUBLE_EQ(rt.transform.alpha, -0.007);
  EXPECT_DOUBLE_EQ(rt.transform.r_max, 20.0);
  const AmfConfig tp = MakeThroughputConfig();
  EXPECT_DOUBLE_EQ(tp.transform.alpha, -0.05);
  EXPECT_DOUBLE_EQ(tp.transform.r_max, 7000.0);
}

TEST(AmfModelTest, InvalidConfigThrows) {
  AmfConfig c = TestConfig();
  c.rank = 0;
  EXPECT_THROW(AmfModel{c}, common::CheckError);
  c = TestConfig();
  c.beta = 0.0;
  EXPECT_THROW(AmfModel{c}, common::CheckError);
  c = TestConfig();
  c.learn_rate = -1.0;
  EXPECT_THROW(AmfModel{c}, common::CheckError);
}

TEST(AmfModelTest, StartsEmpty) {
  AmfModel m(TestConfig());
  EXPECT_EQ(m.num_users(), 0u);
  EXPECT_EQ(m.num_services(), 0u);
  EXPECT_FALSE(m.HasUser(0));
  EXPECT_FALSE(m.HasService(0));
}

TEST(AmfModelTest, EnsureRegistersUpToId) {
  AmfModel m(TestConfig());
  m.EnsureUser(4);
  EXPECT_EQ(m.num_users(), 5u);
  EXPECT_TRUE(m.HasUser(4));
  m.EnsureService(2);
  EXPECT_EQ(m.num_services(), 3u);
  // Idempotent.
  m.EnsureUser(2);
  EXPECT_EQ(m.num_users(), 5u);
}

TEST(AmfModelTest, NewEntitiesHaveInitialErrorOne) {
  AmfModel m(TestConfig());
  m.EnsureUser(0);
  m.EnsureService(0);
  EXPECT_DOUBLE_EQ(m.UserError(0), 1.0);
  EXPECT_DOUBLE_EQ(m.ServiceError(0), 1.0);
}

TEST(AmfModelTest, FactorsInitializedWithinScale) {
  AmfConfig c = TestConfig();
  c.init_scale = 0.4;
  AmfModel m(c);
  m.EnsureUser(9);
  for (data::UserId u = 0; u < 10; ++u) {
    for (double v : m.UserFactors(u)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 0.4);
    }
  }
}

TEST(AmfModelTest, OnlineUpdateRegistersEntities) {
  AmfModel m(TestConfig());
  m.OnlineUpdate(3, 7, 1.0);
  EXPECT_EQ(m.num_users(), 4u);
  EXPECT_EQ(m.num_services(), 8u);
  EXPECT_EQ(m.updates(), 1u);
}

TEST(AmfModelTest, RepeatedUpdatesConvergeToObservedValue) {
  AmfModel m(TestConfig());
  const double truth = 2.5;
  for (int i = 0; i < 400; ++i) m.OnlineUpdate(0, 0, truth);
  EXPECT_NEAR(m.PredictRaw(0, 0), truth, 0.15 * truth);
}

TEST(AmfModelTest, UpdateReturnsPreUpdateRelativeError) {
  AmfModel m(TestConfig());
  m.EnsureUser(0);
  m.EnsureService(0);
  const double r = m.transform().Forward(1.7);
  const double g = m.PredictNormalized(0, 0);
  const double expected = std::abs(r - g) / r;
  EXPECT_NEAR(m.OnlineUpdate(0, 0, 1.7), expected, 1e-12);
}

TEST(AmfModelTest, EntityErrorsTrackAccuracy) {
  AmfModel m(TestConfig());
  for (int i = 0; i < 300; ++i) m.OnlineUpdate(0, 0, 1.2);
  // After convergence the EMA errors must have fallen far below 1.
  EXPECT_LT(m.UserError(0), 0.2);
  EXPECT_LT(m.ServiceError(0), 0.2);
}

TEST(AmfModelTest, AdaptiveWeightsProtectConvergedService) {
  // Train (u0, s0) to convergence, then hit s0 with a brand-new user whose
  // predictions are bad. With adaptive weights the service factor should
  // move much less than the new user's factor.
  AmfConfig c = TestConfig();
  AmfModel m(c);
  for (int i = 0; i < 500; ++i) m.OnlineUpdate(0, 0, 1.2);
  std::vector<double> s_before(m.ServiceFactors(0).begin(),
                               m.ServiceFactors(0).end());
  m.EnsureUser(1);
  std::vector<double> u_before(m.UserFactors(1).begin(),
                               m.UserFactors(1).end());
  m.OnlineUpdate(1, 0, 3.0);
  double s_delta = 0.0, u_delta = 0.0;
  for (std::size_t k = 0; k < c.rank; ++k) {
    s_delta += std::abs(m.ServiceFactors(0)[k] - s_before[k]);
    u_delta += std::abs(m.UserFactors(1)[k] - u_before[k]);
  }
  EXPECT_LT(s_delta, 0.25 * u_delta);
}

TEST(AmfModelTest, FixedWeightsAblationUsesHalf) {
  AmfConfig c = TestConfig();
  c.adaptive_weights = false;
  AmfModel m(c);
  // With w = 1/2 both EMAs move identically from identical initial state.
  m.OnlineUpdate(0, 0, 1.5);
  EXPECT_DOUBLE_EQ(m.UserError(0), m.ServiceError(0));
}

TEST(AmfModelTest, PredictionForUnknownEntityThrows) {
  AmfModel m(TestConfig());
  m.EnsureUser(0);
  EXPECT_THROW(m.PredictRaw(0, 0), common::CheckError);
  EXPECT_THROW(m.PredictRaw(1, 0), common::CheckError);
}

TEST(AmfModelTest, PredictionWithinTransformRange) {
  AmfModel m(TestConfig());
  m.OnlineUpdate(0, 0, 19.0);
  const double p = m.PredictRaw(0, 0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 20.0 + 1e-9);
  const double g = m.PredictNormalized(0, 0);
  EXPECT_GT(g, 0.0);
  EXPECT_LT(g, 1.0);
}

TEST(AmfModelTest, DeterministicInSeed) {
  AmfModel a(TestConfig()), b(TestConfig());
  for (int i = 0; i < 50; ++i) {
    a.OnlineUpdate(i % 3, i % 5, 0.5 + 0.1 * (i % 7));
    b.OnlineUpdate(i % 3, i % 5, 0.5 + 0.1 * (i % 7));
  }
  EXPECT_DOUBLE_EQ(a.PredictRaw(1, 2), b.PredictRaw(1, 2));
}

TEST(AmfModelTest, SimultaneousUpdateUsesOldVectors) {
  // Reproduce the update manually and compare against OnlineUpdate.
  AmfConfig c = TestConfig();
  c.adaptive_weights = true;
  AmfModel m(c);
  m.EnsureUser(0);
  m.EnsureService(0);
  const std::vector<double> u0(m.UserFactors(0).begin(),
                               m.UserFactors(0).end());
  const std::vector<double> s0(m.ServiceFactors(0).begin(),
                               m.ServiceFactors(0).end());
  const double raw = 1.9;
  const double r = m.transform().Forward(raw);
  const double x = linalg::Dot(std::span<const double>(u0),
                               std::span<const double>(s0));
  const double g = transform::Sigmoid(x);
  const double gp = g * (1.0 - g);
  const double eu = 1.0, es = 1.0;
  const double wu = eu / (eu + es), ws = es / (eu + es);
  const double coef = (g - r) * gp / (r * r);
  std::vector<double> u_expect(u0), s_expect(s0);
  for (std::size_t k = 0; k < c.rank; ++k) {
    u_expect[k] -= c.learn_rate * wu * (coef * s0[k] + c.lambda_user * u0[k]);
    s_expect[k] -=
        c.learn_rate * ws * (coef * u0[k] + c.lambda_service * s0[k]);
  }
  m.OnlineUpdate(0, 0, raw);
  for (std::size_t k = 0; k < c.rank; ++k) {
    EXPECT_NEAR(m.UserFactors(0)[k], u_expect[k], 1e-12);
    EXPECT_NEAR(m.ServiceFactors(0)[k], s_expect[k], 1e-12);
  }
}

TEST(AmfModelTest, SetErrorValidation) {
  AmfModel m(TestConfig());
  m.EnsureUser(0);
  m.SetUserError(0, 0.5);
  EXPECT_DOUBLE_EQ(m.UserError(0), 0.5);
  EXPECT_THROW(m.SetUserError(0, -1.0), common::CheckError);
  EXPECT_THROW(m.SetUserError(3, 0.1), common::CheckError);
}

}  // namespace
}  // namespace amf::core

#include "cf/uipcc.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::cf {
namespace {

TEST(UipccTest, Name) { EXPECT_EQ(Uipcc().name(), "UIPCC"); }

TEST(UipccTest, InvalidLambdaThrows) {
  UipccConfig cfg;
  cfg.lambda = 1.5;
  EXPECT_THROW(Uipcc{cfg}, common::CheckError);
  cfg.lambda = -0.1;
  EXPECT_THROW(Uipcc{cfg}, common::CheckError);
}

TEST(UipccTest, LambdaOneEqualsUpccWhenBothAvailable) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.5);
  UipccConfig cfg;
  cfg.lambda = 1.0;
  Uipcc hybrid(cfg);
  hybrid.Fit(split.train);
  Upcc upcc(cfg.neighborhood);
  upcc.Fit(split.train);
  Ipcc ipcc(cfg.neighborhood);
  ipcc.Fit(split.train);
  int compared = 0;
  for (std::size_t i = 0; i < split.test.size() && compared < 30; ++i) {
    const auto& s = split.test[i];
    // Only where both component predictions exist does lambda=1 force the
    // UPCC branch.
    if (upcc.PredictWithConfidence(s.user, s.service) &&
        ipcc.PredictWithConfidence(s.user, s.service)) {
      EXPECT_NEAR(hybrid.Predict(s.user, s.service),
                  upcc.Predict(s.user, s.service), 1e-9);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(UipccTest, LambdaZeroEqualsIpccWhenBothAvailable) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.5);
  UipccConfig cfg;
  cfg.lambda = 0.0;
  Uipcc hybrid(cfg);
  hybrid.Fit(split.train);
  Upcc upcc(cfg.neighborhood);
  upcc.Fit(split.train);
  Ipcc ipcc(cfg.neighborhood);
  ipcc.Fit(split.train);
  int compared = 0;
  for (std::size_t i = 0; i < split.test.size() && compared < 30; ++i) {
    const auto& s = split.test[i];
    if (upcc.PredictWithConfidence(s.user, s.service) &&
        ipcc.PredictWithConfidence(s.user, s.service)) {
      EXPECT_NEAR(hybrid.Predict(s.user, s.service),
                  ipcc.Predict(s.user, s.service), 1e-9);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(UipccTest, PredictionBetweenComponents) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.5);
  Uipcc hybrid;  // lambda = 0.5
  hybrid.Fit(split.train);
  Upcc upcc;
  upcc.Fit(split.train);
  Ipcc ipcc;
  ipcc.Fit(split.train);
  for (std::size_t i = 0; i < 50 && i < split.test.size(); ++i) {
    const auto& s = split.test[i];
    const auto up = upcc.PredictWithConfidence(s.user, s.service);
    const auto ip = ipcc.PredictWithConfidence(s.user, s.service);
    if (!up || !ip) continue;
    const double h = hybrid.Predict(s.user, s.service);
    const double lo = std::min(up->value, ip->value);
    const double hi = std::max(up->value, ip->value);
    EXPECT_GE(h, lo - 1e-9);
    EXPECT_LE(h, hi + 1e-9);
  }
}

TEST(UipccTest, FallsBackToAvailableComponent) {
  // Only user-side neighborhoods exist: two correlated users, the target
  // service observed by the neighbor, but user 0 observes only ONE other
  // service so no service-service similarity is computable.
  data::SparseMatrix m(2, 3);
  m.Set(0, 0, 1.0);
  m.Set(0, 1, 2.0);
  m.Set(1, 0, 2.0);
  m.Set(1, 1, 3.0);
  m.Set(1, 2, 5.0);
  Uipcc hybrid;
  hybrid.Fit(m);
  EXPECT_TRUE(std::isfinite(hybrid.Predict(0, 2)));
}

TEST(UipccTest, ScalarFallbackForEmptyNeighborhoods) {
  data::SparseMatrix m(2, 2);
  m.Set(0, 0, 4.0);
  Uipcc hybrid;
  hybrid.Fit(m);
  // User 1 x service 1: nothing to go on -> global mean.
  EXPECT_DOUBLE_EQ(hybrid.Predict(1, 1), 4.0);
}

TEST(UipccTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  Uipcc hybrid;
  hybrid.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(hybrid, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
}

}  // namespace
}  // namespace amf::cf

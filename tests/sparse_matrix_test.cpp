#include "data/sparse_matrix.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"

namespace amf::data {
namespace {

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.0);
  EXPECT_FALSE(m.Get(0, 0).has_value());
  EXPECT_FALSE(m.Has(2, 3));
}

TEST(SparseMatrixTest, SetAndGet) {
  SparseMatrix m(2, 3);
  m.Set(0, 1, 1.5);
  m.Set(1, 2, -2.0);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(*m.Get(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(*m.Get(1, 2), -2.0);
  EXPECT_FALSE(m.Get(0, 0).has_value());
}

TEST(SparseMatrixTest, OverwriteKeepsNnz) {
  SparseMatrix m(2, 2);
  m.Set(0, 0, 1.0);
  m.Set(0, 0, 2.0);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(*m.Get(0, 0), 2.0);
}

TEST(SparseMatrixTest, EraseUpdatesBothViews) {
  SparseMatrix m(2, 2);
  m.Set(0, 0, 1.0);
  m.Set(0, 1, 2.0);
  EXPECT_TRUE(m.Erase(0, 0));
  EXPECT_FALSE(m.Erase(0, 0));
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_FALSE(m.Has(0, 0));
  EXPECT_TRUE(m.Row(0).size() == 1 && m.Row(0)[0].index == 1);
  EXPECT_TRUE(m.Col(0).empty());
  EXPECT_EQ(m.Col(1).size(), 1u);
}

TEST(SparseMatrixTest, RowsAndColsSorted) {
  SparseMatrix m(3, 5);
  m.Set(1, 4, 4.0);
  m.Set(1, 0, 0.0);
  m.Set(1, 2, 2.0);
  m.Set(0, 2, 9.0);
  m.Set(2, 2, 7.0);
  const auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].index, 0u);
  EXPECT_EQ(row[1].index, 2u);
  EXPECT_EQ(row[2].index, 4u);
  const auto col = m.Col(2);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0].index, 0u);
  EXPECT_EQ(col[1].index, 1u);
  EXPECT_EQ(col[2].index, 2u);
  EXPECT_DOUBLE_EQ(col[2].value, 7.0);
}

TEST(SparseMatrixTest, Means) {
  SparseMatrix m(2, 3);
  m.Set(0, 0, 1.0);
  m.Set(0, 1, 3.0);
  m.Set(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(*m.RowMean(0), 2.0);
  EXPECT_DOUBLE_EQ(*m.RowMean(1), 5.0);
  EXPECT_FALSE(m.ColMean(2).has_value());
  EXPECT_DOUBLE_EQ(*m.ColMean(1), 4.0);
  EXPECT_DOUBLE_EQ(m.GlobalMean(), 3.0);
}

TEST(SparseMatrixTest, GlobalMeanEmptyIsZero) {
  SparseMatrix m(2, 2);
  EXPECT_DOUBLE_EQ(m.GlobalMean(), 0.0);
}

TEST(SparseMatrixTest, Density) {
  SparseMatrix m(2, 5);
  m.Set(0, 0, 1.0);
  m.Set(1, 4, 1.0);
  EXPECT_DOUBLE_EQ(m.Density(), 0.2);
}

TEST(SparseMatrixTest, ToSamples) {
  SparseMatrix m(2, 3);
  m.Set(1, 2, 9.0);
  m.Set(0, 1, 4.0);
  const auto samples = m.ToSamples(7);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].slice, 7u);
  EXPECT_EQ(samples[0].user, 0u);
  EXPECT_EQ(samples[0].service, 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 4.0);
  EXPECT_EQ(samples[1].user, 1u);
}

TEST(SparseMatrixTest, OutOfRangeThrows) {
  SparseMatrix m(2, 2);
  EXPECT_THROW(m.Set(2, 0, 1.0), common::CheckError);
  EXPECT_THROW(m.Get(0, 2), common::CheckError);
  EXPECT_THROW(m.Row(5), common::CheckError);
  EXPECT_THROW(m.Col(5), common::CheckError);
}

TEST(SparseMatrixTest, RandomizedConsistency) {
  common::Rng rng(77);
  SparseMatrix m(20, 30);
  std::vector<std::vector<double>> ref(20, std::vector<double>(30, -1.0));
  for (int i = 0; i < 500; ++i) {
    const std::size_t r = rng.Index(20);
    const std::size_t c = rng.Index(30);
    if (rng.Bernoulli(0.2) && ref[r][c] >= 0.0) {
      m.Erase(r, c);
      ref[r][c] = -1.0;
    } else {
      const double v = rng.Uniform();
      m.Set(r, c, v);
      ref[r][c] = v;
    }
  }
  std::size_t expected_nnz = 0;
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 30; ++c) {
      if (ref[r][c] >= 0.0) {
        ++expected_nnz;
        ASSERT_TRUE(m.Has(r, c));
        EXPECT_DOUBLE_EQ(*m.Get(r, c), ref[r][c]);
      } else {
        EXPECT_FALSE(m.Has(r, c));
      }
    }
  }
  EXPECT_EQ(m.nnz(), expected_nnz);
}

}  // namespace
}  // namespace amf::data

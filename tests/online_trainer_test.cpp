#include "core/online_trainer.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::core {
namespace {

AmfConfig ModelConfig() { return MakeResponseTimeConfig(/*seed=*/2); }

data::QoSSample S(data::UserId u, data::ServiceId s, double v,
                  double ts = 0.0) {
  return data::QoSSample{0, u, s, v, ts};
}

TEST(OnlineTrainerTest, InvalidConfigThrows) {
  AmfModel m(ModelConfig());
  TrainerConfig c;
  c.convergence_tol = 0.0;
  EXPECT_THROW(OnlineTrainer(m, c), common::CheckError);
  TrainerConfig c2;
  c2.max_epochs = 0;
  EXPECT_THROW(OnlineTrainer(m, c2), common::CheckError);
}

TEST(OnlineTrainerTest, ProcessIncomingStoresAndUpdates) {
  AmfModel m(ModelConfig());
  OnlineTrainer trainer(m);
  trainer.Observe(S(0, 0, 1.0));
  trainer.Observe(S(0, 1, 2.0));
  EXPECT_EQ(trainer.ProcessIncoming(), 2u);
  EXPECT_EQ(trainer.store().size(), 2u);
  EXPECT_EQ(m.updates(), 2u);
  EXPECT_EQ(trainer.ProcessIncoming(), 0u);
}

TEST(OnlineTrainerTest, ClockRegressionClampsInsteadOfAborting) {
  AmfModel m(ModelConfig());
  OnlineTrainer trainer(m);
  trainer.AdvanceTime(100.0);
  EXPECT_DOUBLE_EQ(trainer.now(), 100.0);
  // A backwards wall clock (e.g. restore meets an earlier NTP-stepped
  // time) holds the trainer clock and is counted, never an abort.
  EXPECT_NO_THROW(trainer.AdvanceTime(50.0));
  EXPECT_DOUBLE_EQ(trainer.now(), 100.0);
  EXPECT_EQ(trainer.Stats().clock_regressions, 1u);
  // NaN is a regression too (not a clock value).
  trainer.AdvanceTime(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(trainer.now(), 100.0);
  EXPECT_EQ(trainer.Stats().clock_regressions, 2u);
  // Forward progress still works afterwards.
  trainer.AdvanceTime(150.0);
  EXPECT_DOUBLE_EQ(trainer.now(), 150.0);
  EXPECT_EQ(trainer.Stats().clock_regressions, 2u);
}

TEST(OnlineTrainerTest, ProcessIncomingAdvancesClockToSampleTime) {
  AmfModel m(ModelConfig());
  OnlineTrainer trainer(m);
  trainer.Observe(S(0, 0, 1.0, 500.0));
  trainer.ProcessIncoming();
  EXPECT_DOUBLE_EQ(trainer.now(), 500.0);
}

TEST(OnlineTrainerTest, ReplayOneUpdatesModel) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;  // no expiry
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0));
  trainer.ProcessIncoming();
  const auto err = trainer.ReplayOne();
  ASSERT_TRUE(err.has_value());
  EXPECT_GE(*err, 0.0);
  EXPECT_EQ(m.updates(), 2u);
}

TEST(OnlineTrainerTest, ReplayOneOnEmptyStoreIsNoop) {
  AmfModel m(ModelConfig());
  OnlineTrainer trainer(m);
  EXPECT_FALSE(trainer.ReplayOne().has_value());
}

TEST(OnlineTrainerTest, ExpiredSampleIsDroppedNotReplayed) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 900.0;
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0, /*ts=*/0.0));
  trainer.ProcessIncoming();
  trainer.AdvanceTime(1000.0);  // sample now 1000s old > 900s window
  const std::uint64_t updates_before = m.updates();
  EXPECT_FALSE(trainer.ReplayOne().has_value());
  EXPECT_TRUE(trainer.store().empty());
  EXPECT_EQ(m.updates(), updates_before);
}

TEST(OnlineTrainerTest, FreshSampleSurvivesExpiryCheck) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 900.0;
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0, /*ts=*/500.0));
  trainer.ProcessIncoming();
  trainer.AdvanceTime(1000.0);  // only 500s old
  EXPECT_TRUE(trainer.ReplayOne().has_value());
  EXPECT_EQ(trainer.store().size(), 1u);
}

TEST(OnlineTrainerTest, ZeroExpiryDisablesExpiration) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0, 0.0));
  trainer.ProcessIncoming();
  trainer.AdvanceTime(1e9);
  EXPECT_TRUE(trainer.ReplayOne().has_value());
}

TEST(OnlineTrainerTest, RunUntilConvergedReducesError) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  OnlineTrainer trainer(m, cfg);
  for (const auto& s : split.train.ToSamples()) trainer.Observe(s);
  const std::size_t epochs = trainer.RunUntilConverged();
  EXPECT_GT(epochs, 0u);
  EXPECT_TRUE(std::isfinite(trainer.last_epoch_error()));
  EXPECT_LT(trainer.last_epoch_error(), 0.5);
}

TEST(OnlineTrainerTest, ConvergedFlagSetOnToleranceStop) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 40);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.max_epochs = 500;
  OnlineTrainer trainer(m, cfg);
  for (const auto& s : split.train.ToSamples()) trainer.Observe(s);
  trainer.RunUntilConverged();
  EXPECT_TRUE(trainer.converged());
}

TEST(OnlineTrainerTest, EpochCapRespected) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 40);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  cfg.max_epochs = 3;
  cfg.convergence_tol = 1e-12;  // effectively unreachable
  OnlineTrainer trainer(m, cfg);
  for (const auto& s : split.train.ToSamples()) trainer.Observe(s);
  EXPECT_EQ(trainer.RunUntilConverged(), 3u);
  EXPECT_FALSE(trainer.converged());
}

TEST(OnlineTrainerTest, NewObservationsResetConvergence) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0));
  trainer.RunUntilConverged();
  EXPECT_TRUE(trainer.converged());
  trainer.Observe(S(1, 1, 2.0));
  trainer.ProcessIncoming();
  EXPECT_FALSE(trainer.converged());
}

TEST(OnlineTrainerTest, RefreshedSampleValueIsUsed) {
  AmfModel m(ModelConfig());
  TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  OnlineTrainer trainer(m, cfg);
  trainer.Observe(S(0, 0, 1.0, 0.0));
  trainer.ProcessIncoming();
  trainer.Observe(S(0, 0, 5.0, 10.0));  // newer measurement, same pair
  trainer.ProcessIncoming();
  EXPECT_EQ(trainer.store().size(), 1u);
  EXPECT_DOUBLE_EQ(trainer.store().Get(0, 0)->value, 5.0);
}

}  // namespace
}  // namespace amf::core

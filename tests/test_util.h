// Shared fixtures for predictor tests: a small, fully observed, smoothly
// structured QoS slice where collaborative filtering is clearly better
// than scalar baselines.
#pragma once

#include "common/rng.h"
#include "data/masking.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "linalg/matrix.h"

namespace amf::testutil {

/// Small synthetic RT slice (fully observed ground truth).
inline linalg::Matrix SmallRtSlice(std::size_t users = 40,
                                   std::size_t services = 120,
                                   std::uint64_t seed = 2014) {
  data::SyntheticConfig cfg;
  cfg.users = users;
  cfg.services = services;
  cfg.slices = 1;
  cfg.seed = seed;
  const data::SyntheticQoSDataset dataset(cfg);
  return dataset.DenseSlice(data::QoSAttribute::kResponseTime, 0);
}

/// Deterministic split of a slice at the given density.
inline data::TrainTestSplit Split(const linalg::Matrix& slice,
                                  double density, std::uint64_t seed = 1) {
  common::Rng rng(seed);
  return data::SplitSlice(slice, density, rng);
}

/// Metrics of the trivial global-mean predictor on a split (the bar any
/// real CF approach must clear).
inline eval::Metrics GlobalMeanMetrics(const data::TrainTestSplit& split) {
  const double mean = split.train.GlobalMean();
  std::vector<double> pred(split.test.size(), mean);
  std::vector<double> truth;
  truth.reserve(split.test.size());
  for (const auto& s : split.test) truth.push_back(s.value);
  return eval::ComputeMetrics(pred, truth);
}

}  // namespace amf::testutil

#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace amf::common {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.2);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.2);
  EXPECT_DOUBLE_EQ(s.min(), 4.2);
  EXPECT_DOUBLE_EQ(s.max(), 4.2);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats copy = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), copy.count());
  EXPECT_DOUBLE_EQ(a.mean(), copy.mean());
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(MeanStdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MedianTest, EmptyThrows) {
  EXPECT_THROW(Median({}), CheckError);
}

TEST(PercentileTest, Endpoints) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> v = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 12.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 90.0), 19.0);
}

TEST(PercentileTest, NinetiethOnUniformRamp) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_NEAR(Percentile(v, 90.0), 90.1, 1e-9);
}

TEST(PercentileTest, OutOfRangeThrows) {
  EXPECT_THROW(Percentile({1.0}, -1.0), CheckError);
  EXPECT_THROW(Percentile({1.0}, 101.0), CheckError);
}

TEST(PercentileTest, EmptyThrows) {
  EXPECT_THROW(Percentile({}, 50.0), CheckError);
}

TEST(PercentileTest, SingleElementIsEveryPercentile) {
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({7.5}, p), 7.5);
  }
}

TEST(RunningStatsTest, MergeTwoEmpties) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStatsTest, MergeSingleElementSides) {
  RunningStats a, b;
  a.Add(2.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  // Sample variance of {2, 4} = 2.
  EXPECT_NEAR(a.variance(), 2.0, 1e-12);
}

TEST(HistogramTest, BinningAndDensity) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.Add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);  // [0,2)
  EXPECT_EQ(h.count(1), 2u);  // [2,4)
  EXPECT_EQ(h.count(4), 1u);  // [8,10)
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
  double total_density = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total_density += h.density(b);
  EXPECT_NEAR(total_density, 1.0, 1e-12);
}

TEST(HistogramTest, OutOfRangeTrackedNotClamped) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);  // below lo -> underflow, no bin
  h.Add(7.0);   // above hi -> overflow, no bin
  h.Add(1.0);   // hi is exclusive -> overflow too
  h.Add(0.25);  // in range -> first bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.total(), 1u);  // in-range only
  EXPECT_EQ(h.seen(), 4u);   // everything Add saw
}

TEST(HistogramTest, DensityExcludesOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.Add(x);
  h.Add(-100.0);
  h.Add(1e9);
  // Densities are over the 5 in-range samples; out-of-range ones neither
  // inflate an edge bin nor deflate the normalization.
  EXPECT_DOUBLE_EQ(h.density(0), 0.4);
  double total_density = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total_density += h.density(b);
  EXPECT_NEAR(total_density, 1.0, 1e-12);
}

TEST(HistogramTest, AsciiReportsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.5);
  h.Add(-1.0);
  h.Add(2.0);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("underflow=1"), std::string::npos);
  EXPECT_NE(art.find("overflow=1"), std::string::npos);
  // No out-of-range line when everything fit.
  Histogram clean(0.0, 1.0, 2);
  clean.Add(0.5);
  EXPECT_EQ(clean.ToAscii(10).find("underflow"), std::string::npos);
}

TEST(HistogramTest, BinCenters) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(HistogramTest, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.AddAll({0.5, 1.5, 1.6, 3.5});
  const std::string art = h.ToAscii(10);
  int lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace amf::common

// Arena-backed factor layout (core/factor_arena.h + the AmfModel blocked
// predict paths built on it): alignment/stride invariants that the SIMD
// kernels and the false-sharing analysis rely on, bit-identity of the
// layout change against the scalar reference paths, and checkpoint
// round-trips through the new storage.
#include "core/factor_arena.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "core/amf_model.h"
#include "core/checkpoint.h"
#include "core/sample_store.h"
#include "linalg/kernels.h"

namespace amf::core {
namespace {

bool RowAligned(const double* p) {
  return common::IsAligned(p, AmfModel::kFactorRowAlignment);
}

// --- FactorArena itself ------------------------------------------------------

TEST(FactorArenaTest, StrideIsCacheLineMultipleOfRank) {
  for (std::size_t rank : {1u, 7u, 8u, 10u, 9u, 16u, 17u, 32u, 100u}) {
    FactorArena arena(rank);
    EXPECT_GE(arena.stride(), rank);
    EXPECT_EQ(arena.stride() * sizeof(double) % common::kCacheLineBytes, 0u)
        << "rank " << rank;
  }
}

TEST(FactorArenaTest, EveryRowAlignedAcrossGrowth) {
  FactorArena arena(10);
  std::size_t total = 0;
  // Repeated growth forces several geometric reallocations; alignment
  // must hold for every row after every one of them.
  for (std::size_t target : {1u, 3u, 17u, 64u, 65u, 500u}) {
    arena.Grow(target, 1.0);
    total = target;
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(RowAligned(arena.row(i))) << "row " << i << " at size "
                                            << total;
      ASSERT_TRUE(common::IsAligned(&arena.version(i),
                                    common::kCacheLineBytes))
          << "meta line " << i;
    }
  }
}

TEST(FactorArenaTest, GrowZeroFillsNewRowsAndSetsInitialError) {
  FactorArena arena(5);
  arena.Grow(4, 0.75);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(arena.error(i), 0.75);
    EXPECT_EQ(arena.version(i), 0u);
    for (double v : arena.row_span(i)) EXPECT_EQ(v, 0.0);
    // Pad lanes beyond rank must also be zero (the strided GEMV loads
    // only [0, rank), but the invariant keeps the block dumpable).
    for (std::size_t k = arena.rank(); k < arena.stride(); ++k) {
      EXPECT_EQ(arena.row(i)[k], 0.0);
    }
  }
}

TEST(FactorArenaTest, GrowPreservesExistingRows) {
  FactorArena arena(6);
  arena.Grow(3, 1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    auto row = arena.row_span(i);
    for (std::size_t k = 0; k < row.size(); ++k) {
      row[k] = static_cast<double>(i * 100 + k);
    }
    arena.error(i) = static_cast<double>(i) + 0.5;
  }
  arena.Grow(200, 1.0);  // certainly reallocates
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t k = 0; k < arena.rank(); ++k) {
      EXPECT_EQ(arena.row(i)[k], static_cast<double>(i * 100 + k));
    }
    EXPECT_DOUBLE_EQ(arena.error(i), static_cast<double>(i) + 0.5);
  }
}

// --- AmfModel on the arena ---------------------------------------------------

AmfModel SmallTrainedModel(std::size_t users, std::size_t services) {
  AmfConfig cfg = MakeResponseTimeConfig(/*seed=*/23);
  cfg.rank = 10;
  AmfModel m(cfg);
  m.EnsureUser(static_cast<data::UserId>(users - 1));
  m.EnsureService(static_cast<data::ServiceId>(services - 1));
  for (std::size_t i = 0; i < users * services; ++i) {
    m.OnlineUpdate(static_cast<data::UserId>(i % users),
                   static_cast<data::ServiceId>((i * 13) % services),
                   0.3 + 0.001 * static_cast<double>(i % 89));
  }
  return m;
}

TEST(FactorArenaModelTest, AllFactorRowsAlignedAfterIncrementalGrowth) {
  AmfModel m(MakeResponseTimeConfig(1));
  // Grow one entity at a time — the worst case for any layout that packs
  // rank-length rows back to back.
  for (int i = 0; i < 150; ++i) {
    m.EnsureUser(static_cast<data::UserId>(i));
    m.EnsureService(static_cast<data::ServiceId>(i * 2 + 1));
  }
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    ASSERT_TRUE(RowAligned(m.UserFactors(u).data())) << "user " << u;
  }
  for (data::ServiceId s = 0; s < m.num_services(); ++s) {
    ASSERT_TRUE(RowAligned(m.ServiceFactors(s).data())) << "service " << s;
  }
}

TEST(FactorArenaModelTest, RowsStayAlignedAfterRetireReinit) {
  AmfModel m = SmallTrainedModel(8, 16);
  m.RetireUser(3);
  m.RetireService(7);
  EXPECT_TRUE(RowAligned(m.UserFactors(3).data()));
  EXPECT_TRUE(RowAligned(m.ServiceFactors(7).data()));
  // Retirement resets to the cold-start state without disturbing others.
  EXPECT_DOUBLE_EQ(m.UserError(3), m.config().initial_error);
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    for (data::ServiceId s = 0; s < m.num_services(); ++s) {
      EXPECT_TRUE(std::isfinite(m.PredictRaw(u, s)));
    }
  }
}

TEST(FactorArenaModelTest, StrideConstantAndExposed) {
  AmfConfig cfg = MakeResponseTimeConfig(2);
  cfg.rank = 10;
  AmfModel m(cfg);
  const std::size_t stride = m.factor_row_stride();
  EXPECT_GE(stride, cfg.rank);
  EXPECT_EQ(stride * sizeof(double) % AmfModel::kFactorRowAlignment, 0u);
  m.EnsureUser(999);
  m.EnsureService(999);
  EXPECT_EQ(m.factor_row_stride(), stride);  // growth never changes it
  // Consecutive rows are exactly one stride apart (blocked layout).
  EXPECT_EQ(m.UserFactors(1).data() - m.UserFactors(0).data(),
            static_cast<std::ptrdiff_t>(stride));
}

TEST(FactorArenaModelTest, SharedReadoutsBitIdenticalWhenQuiescent) {
  AmfModel m = SmallTrainedModel(12, 64);
  std::vector<data::ServiceId> ids;
  for (data::ServiceId s = 0; s < m.num_services(); ++s) ids.push_back(s);
  std::vector<double> plain(ids.size());
  std::vector<double> shared(ids.size());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    // Gather path vs PredictManyRaw.
    m.PredictManyRaw(u, ids, plain);
    m.PredictManyRawShared(u, ids, shared);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(plain[i], shared[i]) << "gather u=" << u << " i=" << i;
    }
    // Row path vs PredictRowRaw (both GEMV-shaped).
    m.PredictRowRaw(u, plain);
    m.PredictRowRawShared(u, shared);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(plain[i], shared[i]) << "row u=" << u << " i=" << i;
    }
    // Scalar shared entry vs scalar plain entry: the scalar shared dot has
    // always used a single-accumulator reduction (vs linalg::Dot's
    // 4-accumulator shape), so these two agree only up to summation order
    // — the arena must not have widened that gap.
    for (data::ServiceId s = 0; s < m.num_services(); ++s) {
      const double plain_v = m.PredictRaw(u, s);
      EXPECT_NEAR(m.PredictRawShared(u, s), plain_v,
                  1e-12 * (1.0 + std::abs(plain_v)));
    }
  }
}

TEST(FactorArenaModelTest, CheckpointRoundTripBitIdenticalPredictions) {
  AmfModel m = SmallTrainedModel(10, 40);
  SampleStore store;
  store.Upsert({0, 1, 2, 0.8, 5.0});
  std::stringstream ss;
  WriteCheckpoint(ss, m, store, 100.0, 0.25);
  CheckpointData restored = ReadCheckpoint(ss);
  ASSERT_EQ(restored.model.num_users(), m.num_users());
  ASSERT_EQ(restored.model.num_services(), m.num_services());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    EXPECT_EQ(m.UserError(u), restored.model.UserError(u));
    for (data::ServiceId s = 0; s < m.num_services(); ++s) {
      // Bit-identical, not approximately equal: the arena layout must not
      // perturb serialization or readout numerics in any way.
      EXPECT_EQ(m.PredictRaw(u, s), restored.model.PredictRaw(u, s))
          << "u=" << u << " s=" << s;
    }
  }
  // The restored arena satisfies the same alignment contract.
  for (data::UserId u = 0; u < restored.model.num_users(); ++u) {
    ASSERT_TRUE(RowAligned(restored.model.UserFactors(u).data()));
  }
}

// --- Strided GEMV kernel -----------------------------------------------------

TEST(StridedGemvTest, MatchesPackedGemvBitForBit) {
  for (std::size_t rank : {1u, 3u, 8u, 10u, 13u, 32u}) {
    const std::size_t stride =
        common::RoundUp(rank, common::kCacheLineBytes / sizeof(double));
    const std::size_t rows = 157;
    std::vector<double, common::AlignedAllocator<double>> strided(
        rows * stride, 0.0);
    std::vector<double> packed(rows * rank);
    common::Rng rng(rank);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t k = 0; k < rank; ++k) {
        const double v = rng.Uniform() - 0.5;
        strided[r * stride + k] = v;
        packed[r * rank + k] = v;
      }
    }
    std::vector<double> x(rank);
    for (double& v : x) v = rng.Uniform();
    std::vector<double> out_packed(rows);
    std::vector<double> out_strided(rows);
    linalg::GemvRowMajor(x, packed, out_packed);
    linalg::GemvRowMajorStrided(x, strided.data(), stride, out_strided);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out_packed[r], out_strided[r])
          << "rank " << rank << " row " << r;
    }
  }
}

TEST(StridedGemvTest, StrideEqualRankDegeneratesToPacked) {
  // stride == rank is legal (rank already a line multiple) and must be
  // exactly GemvRowMajor.
  const std::size_t rank = 16;
  const std::size_t rows = 40;
  std::vector<double, common::AlignedAllocator<double>> block(rows * rank);
  common::Rng rng(5);
  for (double& v : block) v = rng.Uniform() - 0.5;
  std::vector<double> x(rank);
  for (double& v : x) v = rng.Uniform();
  std::vector<double> a(rows);
  std::vector<double> b(rows);
  linalg::GemvRowMajor(x, {block.data(), block.size()}, a);
  linalg::GemvRowMajorStrided(x, block.data(), rank, b);
  for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(a[r], b[r]);
}

}  // namespace
}  // namespace amf::core

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/statistics.h"
#include "linalg/svd.h"
#include "transform/boxcox.h"

namespace amf::data {
namespace {

SyntheticConfig SmallConfig(std::uint64_t seed = 1) {
  SyntheticConfig c;
  c.users = 40;
  c.services = 120;
  c.slices = 8;
  c.seed = seed;
  return c;
}

TEST(SyntheticDatasetTest, Dimensions) {
  const SyntheticQoSDataset d(SmallConfig());
  EXPECT_EQ(d.num_users(), 40u);
  EXPECT_EQ(d.num_services(), 120u);
  EXPECT_EQ(d.num_slices(), 8u);
}

TEST(SyntheticDatasetTest, DeterministicInSeed) {
  const SyntheticQoSDataset a(SmallConfig(5));
  const SyntheticQoSDataset b(SmallConfig(5));
  const SyntheticQoSDataset c(SmallConfig(6));
  int diff = 0;
  for (UserId u = 0; u < 10; ++u) {
    for (ServiceId s = 0; s < 10; ++s) {
      EXPECT_DOUBLE_EQ(a.Value(QoSAttribute::kResponseTime, u, s, 3),
                       b.Value(QoSAttribute::kResponseTime, u, s, 3));
      if (a.Value(QoSAttribute::kResponseTime, u, s, 3) !=
          c.Value(QoSAttribute::kResponseTime, u, s, 3)) {
        ++diff;
      }
    }
  }
  EXPECT_GT(diff, 90);
}

TEST(SyntheticDatasetTest, ValuesWithinConfiguredRanges) {
  const SyntheticQoSDataset d(SmallConfig());
  for (UserId u = 0; u < 40; u += 3) {
    for (ServiceId s = 0; s < 120; s += 7) {
      for (SliceId t = 0; t < 8; t += 2) {
        const double rt = d.Value(QoSAttribute::kResponseTime, u, s, t);
        EXPECT_GE(rt, d.config().rt.v_floor);
        EXPECT_LE(rt, d.config().rt.v_max);
        const double tp = d.Value(QoSAttribute::kThroughput, u, s, t);
        EXPECT_GE(tp, d.config().tp.v_floor);
        EXPECT_LE(tp, d.config().tp.v_max);
      }
    }
  }
}

TEST(SyntheticDatasetTest, DenseSliceMatchesValue) {
  const SyntheticQoSDataset d(SmallConfig());
  const linalg::Matrix slice = d.DenseSlice(QoSAttribute::kThroughput, 2);
  for (UserId u = 0; u < 40; u += 5) {
    for (ServiceId s = 0; s < 120; s += 11) {
      EXPECT_NEAR(slice(u, s), d.Value(QoSAttribute::kThroughput, u, s, 2),
                  1e-12);
    }
  }
}

TEST(SyntheticDatasetTest, MarginalsAreRightSkewed) {
  // Fig. 7 property: mean well above median for both attributes.
  const SyntheticQoSDataset d(SmallConfig(3));
  const linalg::Matrix rt = d.DenseSlice(QoSAttribute::kResponseTime, 0);
  std::vector<double> values(rt.data().begin(), rt.data().end());
  const double mean = common::Mean(values);
  const double median = common::Median(values);
  EXPECT_GT(mean, 1.15 * median);
}

TEST(SyntheticDatasetTest, PaperScaleStatisticsMatchFig6) {
  // Calibration check at the paper's user/service ratio (scaled down but
  // same distributional parameters): RT mean ~ 1.33s, TP mean ~ 11 kbps.
  SyntheticConfig cfg;
  cfg.users = 60;
  cfg.services = 800;
  cfg.slices = 2;
  cfg.seed = 9;
  const SyntheticQoSDataset d(cfg);
  common::RunningStats rt_stats, tp_stats;
  const linalg::Matrix rt_slice =
      d.DenseSlice(QoSAttribute::kResponseTime, 0);
  for (double v : rt_slice.data()) rt_stats.Add(v);
  const linalg::Matrix tp_slice = d.DenseSlice(QoSAttribute::kThroughput, 0);
  for (double v : tp_slice.data()) tp_stats.Add(v);
  EXPECT_GT(rt_stats.mean(), 0.8);
  EXPECT_LT(rt_stats.mean(), 2.2);
  EXPECT_GT(tp_stats.mean(), 6.0);
  EXPECT_LT(tp_stats.mean(), 25.0);
  EXPECT_LE(rt_stats.max(), 20.0);
  EXPECT_LE(tp_stats.max(), 7000.0);
}

TEST(SyntheticDatasetTest, LogDomainIsApproximatelyLowRank) {
  // Fig. 9 property: normalized singular values of the (log-transformed)
  // slice decay fast; most of the spectrum is near zero.
  SyntheticConfig cfg = SmallConfig(11);
  cfg.users = 48;
  cfg.services = 160;
  const SyntheticQoSDataset d(cfg);
  linalg::Matrix slice = d.DenseSlice(QoSAttribute::kResponseTime, 0);
  for (double& v : slice.data()) v = std::log(v);
  const auto sv = linalg::NormalizedSingularValues(slice);
  ASSERT_EQ(sv.size(), 48u);
  // Count singular values above 10% of the top one: should be a small
  // fraction of the full dimension (low effective rank).
  std::size_t big = 0;
  for (double s : sv) {
    if (s >= 0.1) ++big;
  }
  EXPECT_LE(big, 15u);
  EXPECT_GE(big, 2u);
  // Tail is tiny.
  EXPECT_LT(sv[30], 0.08);
}

TEST(SyntheticDatasetTest, TemporalFluctuationAroundPairMean) {
  // Fig. 2(a) property: a pair's RT varies over time but around a stable
  // level -- the per-pair stddev over slices is well below the global
  // cross-pair spread.
  SyntheticConfig cfg = SmallConfig(13);
  cfg.slices = 16;
  const SyntheticQoSDataset d(cfg);
  common::RunningStats within;
  std::vector<double> pair_means;
  for (UserId u = 0; u < 10; ++u) {
    for (ServiceId s = 0; s < 10; ++s) {
      common::RunningStats series;
      for (SliceId t = 0; t < 16; ++t) {
        series.Add(std::log(d.Value(QoSAttribute::kResponseTime, u, s, t)));
      }
      within.Add(series.stddev());
      pair_means.push_back(series.mean());
    }
  }
  const double between = common::StdDev(pair_means);
  EXPECT_LT(within.mean(), 0.7 * between);
  EXPECT_GT(within.mean(), 0.0);
}

TEST(SyntheticDatasetTest, UserSpecificQoS) {
  // Fig. 2(b) property: different users see substantially different RT on
  // the same service.
  const SyntheticQoSDataset d(SmallConfig(17));
  std::vector<double> rts;
  for (UserId u = 0; u < 40; ++u) {
    rts.push_back(std::log(d.Value(QoSAttribute::kResponseTime, u, 5, 0)));
  }
  EXPECT_GT(common::StdDev(rts), 0.4);
}

TEST(SyntheticDatasetTest, RegionsAssigned) {
  const SyntheticQoSDataset d(SmallConfig());
  for (UserId u = 0; u < 40; ++u) {
    EXPECT_LT(d.UserRegion(u), d.config().regions);
  }
  for (ServiceId s = 0; s < 120; ++s) {
    EXPECT_LT(d.ServiceRegion(s), d.config().regions);
  }
}

TEST(SyntheticDatasetTest, OutOfRangeThrows) {
  const SyntheticQoSDataset d(SmallConfig());
  EXPECT_THROW(d.Value(QoSAttribute::kResponseTime, 40, 0, 0),
               common::CheckError);
  EXPECT_THROW(d.Value(QoSAttribute::kResponseTime, 0, 120, 0),
               common::CheckError);
  EXPECT_THROW(d.Value(QoSAttribute::kResponseTime, 0, 0, 8),
               common::CheckError);
}

TEST(SyntheticDatasetTest, InvalidConfigThrows) {
  SyntheticConfig cfg = SmallConfig();
  cfg.users = 0;
  EXPECT_THROW(SyntheticQoSDataset{cfg}, common::CheckError);
}

TEST(SyntheticDatasetTest, SliceTimestamp) {
  const SyntheticQoSDataset d(SmallConfig());
  EXPECT_DOUBLE_EQ(d.SliceTimestamp(0), 0.0);
  EXPECT_DOUBLE_EQ(d.SliceTimestamp(4), 4 * 900.0);
}

}  // namespace
}  // namespace amf::data

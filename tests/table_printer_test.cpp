#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace amf::common {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t({"a", "b"});
  t.AddRow({"longvalue", "x"});
  t.AddRow({"s", "y"});
  const std::string s = t.ToString();
  // All lines (header, separator, rows) end at consistent widths; check
  // that the second column of both rows starts at the same offset.
  std::istringstream iss(s);
  std::string header, sep, row1, row2;
  std::getline(iss, header);
  std::getline(iss, sep);
  std::getline(iss, row1);
  std::getline(iss, row2);
  EXPECT_EQ(row1.find(" x"), row2.find(" y"));
}

TEST(TablePrinterTest, DoubleRowFormatting) {
  TablePrinter t({"label", "m1", "m2"});
  t.AddRow("row", {1.23456, 7.0}, 2);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("7.00"), std::string::npos);
}

TEST(TablePrinterTest, WrongWidthThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckError);
  EXPECT_THROW(t.AddRow({"1", "2", "3"}), CheckError);
}

TEST(TablePrinterTest, EmptyHeadersThrow) {
  EXPECT_THROW(TablePrinter({}), CheckError);
}

TEST(TablePrinterTest, RowsCount) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TablePrinterTest, CsvBasic) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, CsvQuotesSpecialCharacters) {
  TablePrinter t({"name"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  EXPECT_EQ(t.ToCsv(), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TablePrinterTest, MarkdownShape) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  const std::string md = t.ToMarkdown();
  EXPECT_EQ(md, "| x | y |\n|---|---|\n| 1 | 2 |\n");
}

TEST(TablePrinterTest, MarkdownEscapesPipes) {
  TablePrinter t({"c"});
  t.AddRow({"a|b"});
  EXPECT_NE(t.ToMarkdown().find("a\\|b"), std::string::npos);
}

TEST(TablePrinterTest, PrintWritesToStream) {
  TablePrinter t({"h"});
  t.AddRow({"v"});
  std::ostringstream oss;
  t.Print(oss);
  EXPECT_FALSE(oss.str().empty());
}

}  // namespace
}  // namespace amf::common

#include "adapt/policy.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace amf::adapt {
namespace {

data::SyntheticQoSDataset MakeDataset() {
  data::SyntheticConfig cfg;
  cfg.users = 4;
  cfg.services = 6;
  cfg.slices = 2;
  cfg.seed = 4;
  return data::SyntheticQoSDataset(cfg);
}

AbstractTask MakeTask() { return AbstractTask{"t", {0, 1, 2, 3}}; }

TaskContext ViolatedContext(const AbstractTask& task) {
  TaskContext ctx;
  ctx.task = &task;
  ctx.user = 0;
  ctx.current_binding = 0;
  ctx.observed_rt = 10.0;
  ctx.failed = false;
  ctx.sla_threshold = 2.0;
  ctx.now_seconds = 0.0;
  return ctx;
}

TEST(NoAdaptationPolicyTest, NeverRebinds) {
  const AbstractTask task = MakeTask();
  NoAdaptationPolicy policy;
  EXPECT_EQ(policy.name(), "none");
  EXPECT_FALSE(policy.SelectBinding(ViolatedContext(task)).has_value());
}

TEST(RandomPolicyTest, NoRebindWithoutViolation) {
  const AbstractTask task = MakeTask();
  RandomPolicy policy(1);
  TaskContext ctx = ViolatedContext(task);
  ctx.observed_rt = 1.0;  // under SLA
  EXPECT_FALSE(policy.SelectBinding(ctx).has_value());
}

TEST(RandomPolicyTest, RebindsToDifferentCandidateOnViolation) {
  const AbstractTask task = MakeTask();
  RandomPolicy policy(1);
  for (int i = 0; i < 20; ++i) {
    const auto pick = policy.SelectBinding(ViolatedContext(task));
    ASSERT_TRUE(pick.has_value());
    EXPECT_NE(*pick, 0u);
    EXPECT_LE(*pick, 3u);
  }
}

TEST(RandomPolicyTest, FailureTriggersRebind) {
  const AbstractTask task = MakeTask();
  RandomPolicy policy(2);
  TaskContext ctx = ViolatedContext(task);
  ctx.observed_rt = 1.0;
  ctx.failed = true;
  EXPECT_TRUE(policy.SelectBinding(ctx).has_value());
}

TEST(RandomPolicyTest, SingleCandidateKeepsBinding) {
  const AbstractTask task{"solo", {0}};
  RandomPolicy policy(3);
  EXPECT_FALSE(policy.SelectBinding(ViolatedContext(task)).has_value());
}

TEST(OraclePolicyTest, PicksTrulyBestCandidate) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  OraclePolicy policy(env);
  const AbstractTask task = MakeTask();
  const auto pick = policy.SelectBinding(ViolatedContext(task));
  // Find the true best among candidates for user 0 at t=0.
  data::ServiceId best = 0;
  double best_rt = 1e300;
  for (data::ServiceId c : task.candidates) {
    const double rt = env.TrueResponseTime(0, c, 0.0);
    if (rt < best_rt) {
      best_rt = rt;
      best = c;
    }
  }
  if (best == 0) {
    EXPECT_FALSE(pick.has_value());  // current already best
  } else {
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, best);
  }
}

TEST(OraclePolicyTest, SkipsDownCandidates) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  // Take every candidate down except 2.
  env.AddOutage({0, 0.0, 1e9});
  env.AddOutage({1, 0.0, 1e9});
  env.AddOutage({3, 0.0, 1e9});
  OraclePolicy policy(env);
  const AbstractTask task = MakeTask();
  const auto pick = policy.SelectBinding(ViolatedContext(task));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(PredictedBestPolicyTest, FollowsServicePredictions) {
  const auto dataset = MakeDataset();
  QoSPredictionService service;
  for (int u = 0; u < 4; ++u) service.RegisterUser("u" + std::to_string(u));
  for (int s = 0; s < 6; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  // Teach the model strongly that service 2 is fast for user 0 and the
  // others are slow.
  for (int i = 0; i < 300; ++i) {
    service.ReportObservation({0, 0, 2, 0.05, 0.0});
    service.ReportObservation({0, 0, 0, 8.0, 0.0});
    service.ReportObservation({0, 0, 1, 9.0, 0.0});
    service.ReportObservation({0, 0, 3, 7.0, 0.0});
    service.Tick(0.0);
  }
  PredictedBestPolicy policy(service);
  const AbstractTask task = MakeTask();
  const auto pick = policy.SelectBinding(ViolatedContext(task));
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 2u);
}

TEST(PredictedBestPolicyTest, RiskAversionFollowsUncertaintyPenalty) {
  // Train two candidates to different degrees, then verify that the
  // risk-averse policy's pick is exactly the argmin of
  // value * (1 + kappa * uncertainty) computed from the service's own
  // uncertainty-aware predictions (and risk-neutral the argmin of value).
  QoSPredictionService service;
  service.RegisterUser("u");
  for (int s = 0; s < 3; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  for (int i = 0; i < 300; ++i) {
    service.ReportObservation({0, 0, 2, 1.0, 0.0});
    service.Tick(0.0);
  }
  for (int i = 0; i < 2; ++i) {
    service.ReportObservation({0, 0, 1, 0.8, 0.0});
    service.Tick(0.0);
  }

  const AbstractTask task{"t", {1, 2}};
  const double kappa = 5.0;
  auto argmin = [&](auto score) {
    data::ServiceId best = task.candidates[0];
    double best_score = 1e300;
    for (data::ServiceId c : task.candidates) {
      const auto p = *service.PredictQoSWithUncertainty(0, c);
      if (score(p) < best_score) {
        best_score = score(p);
        best = c;
      }
    }
    return best;
  };
  using P = QoSPredictionService::Prediction;
  const data::ServiceId neutral_best =
      argmin([](const P& p) { return p.value; });
  const data::ServiceId averse_best = argmin(
      [&](const P& p) { return p.value * (1.0 + kappa * p.uncertainty); });

  // Make the currently-bound service never the winner so a rebind always
  // results (current = a third, untrained candidate is impossible here;
  // use whichever candidate did NOT win for each policy).
  PredictedBestPolicy neutral(service, /*skip_untrained=*/false, 0.0);
  PredictedBestPolicy averse(service, /*skip_untrained=*/false, kappa);
  TaskContext ctx = ViolatedContext(task);

  ctx.current_binding = neutral_best == 1 ? 2 : 1;
  const auto neutral_pick = neutral.SelectBinding(ctx);
  ASSERT_TRUE(neutral_pick.has_value());
  EXPECT_EQ(*neutral_pick, neutral_best);

  ctx.current_binding = averse_best == 1 ? 2 : 1;
  const auto averse_pick = averse.SelectBinding(ctx);
  ASSERT_TRUE(averse_pick.has_value());
  EXPECT_EQ(*averse_pick, averse_best);

  // The barely-trained candidate must carry higher uncertainty.
  EXPECT_GT(service.model().PredictionUncertainty(0, 1),
            service.model().PredictionUncertainty(0, 2));
}

TEST(PredictedBestPolicyTest, KeepsBindingWhenNoViolation) {
  const auto dataset = MakeDataset();
  QoSPredictionService service;
  PredictedBestPolicy policy(service);
  const AbstractTask task = MakeTask();
  TaskContext ctx = ViolatedContext(task);
  ctx.observed_rt = 0.5;
  EXPECT_FALSE(policy.SelectBinding(ctx).has_value());
}

}  // namespace
}  // namespace amf::adapt

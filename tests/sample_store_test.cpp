#include "core/sample_store.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace amf::core {
namespace {

data::QoSSample S(data::UserId u, data::ServiceId s, double v, double ts) {
  return data::QoSSample{0, u, s, v, ts};
}

TEST(SampleStoreTest, StartsEmpty) {
  SampleStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Get(0, 0).has_value());
}

TEST(SampleStoreTest, UpsertInsertsAndRefreshes) {
  SampleStore store;
  EXPECT_TRUE(store.Upsert(S(1, 2, 3.0, 10.0)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Upsert(S(1, 2, 4.0, 20.0)));  // same pair -> refresh
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.Get(1, 2);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->value, 4.0);
  EXPECT_DOUBLE_EQ(got->timestamp, 20.0);
}

TEST(SampleStoreTest, RemoveSwapKeepsIndexConsistent) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 0));
  store.Upsert(S(0, 1, 2.0, 0));
  store.Upsert(S(1, 0, 3.0, 0));
  EXPECT_TRUE(store.Remove(0, 0));
  EXPECT_FALSE(store.Remove(0, 0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(0, 1));
  EXPECT_TRUE(store.Contains(1, 0));
  EXPECT_DOUBLE_EQ(store.Get(1, 0)->value, 3.0);
}

TEST(SampleStoreTest, UserServiceKeysDoNotCollide) {
  SampleStore store;
  store.Upsert(S(1, 2, 10.0, 0));
  store.Upsert(S(2, 1, 20.0, 0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_DOUBLE_EQ(store.Get(1, 2)->value, 10.0);
  EXPECT_DOUBLE_EQ(store.Get(2, 1)->value, 20.0);
}

TEST(SampleStoreTest, PickRandomCoversStore) {
  SampleStore store;
  for (data::UserId u = 0; u < 10; ++u) store.Upsert(S(u, 0, u, 0));
  common::Rng rng(5);
  std::set<data::UserId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(store.PickRandom(rng).user);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SampleStoreTest, PickRandomEmptyThrows) {
  SampleStore store;
  common::Rng rng(1);
  EXPECT_THROW(store.PickRandom(rng), common::CheckError);
}

TEST(SampleStoreTest, ExpireOlderThan) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 100.0));
  store.Upsert(S(0, 1, 2.0, 200.0));
  store.Upsert(S(0, 2, 3.0, 300.0));
  store.Upsert(S(1, 0, 4.0, 50.0));
  EXPECT_EQ(store.ExpireOlderThan(200.0), 2u);  // ts 100 and 50
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(0, 1));
  EXPECT_TRUE(store.Contains(0, 2));
  EXPECT_EQ(store.ExpireOlderThan(200.0), 0u);
}

TEST(SampleStoreTest, ExpireEverything) {
  SampleStore store;
  for (data::UserId u = 0; u < 5; ++u) store.Upsert(S(u, u, 1.0, 1.0));
  EXPECT_EQ(store.ExpireOlderThan(10.0), 5u);
  EXPECT_TRUE(store.empty());
}

TEST(SampleStoreTest, Clear) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 0));
  store.Clear();
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.Contains(0, 0));
}

TEST(SampleStoreTest, RemoveUserPurgesEveryRowOfThatUser) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 0));
  store.Upsert(S(0, 1, 2.0, 0));
  store.Upsert(S(0, 2, 3.0, 0));
  store.Upsert(S(1, 0, 4.0, 0));
  store.Upsert(S(2, 1, 5.0, 0));
  EXPECT_EQ(store.RemoveUser(0), 3u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.Contains(0, 0));
  EXPECT_FALSE(store.Contains(0, 1));
  EXPECT_FALSE(store.Contains(0, 2));
  EXPECT_DOUBLE_EQ(store.Get(1, 0)->value, 4.0);
  EXPECT_DOUBLE_EQ(store.Get(2, 1)->value, 5.0);
  EXPECT_EQ(store.RemoveUser(0), 0u);
}

TEST(SampleStoreTest, RemoveServicePurgesEveryColumnOfThatService) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 0));
  store.Upsert(S(1, 0, 2.0, 0));
  store.Upsert(S(2, 0, 3.0, 0));
  store.Upsert(S(0, 1, 4.0, 0));
  EXPECT_EQ(store.RemoveService(0), 3u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(store.Get(0, 1)->value, 4.0);
  EXPECT_EQ(store.RemoveService(7), 0u);
}

TEST(SampleStoreTest, SamplesViewMatchesSize) {
  SampleStore store;
  store.Upsert(S(0, 0, 1.0, 0));
  store.Upsert(S(0, 1, 2.0, 0));
  EXPECT_EQ(store.samples().size(), store.size());
}

}  // namespace
}  // namespace amf::core

#include "cf/ipcc.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::cf {
namespace {

TEST(IpccTest, PredictBeforeFitThrows) {
  Ipcc ipcc;
  EXPECT_THROW(ipcc.Predict(0, 0), common::CheckError);
}

TEST(IpccTest, Name) { EXPECT_EQ(Ipcc().name(), "IPCC"); }

TEST(IpccTest, ExactForPerfectlyCorrelatedServices) {
  // Service 1 = service 0 + 1 on every co-observing user.
  data::SparseMatrix m(5, 2);
  for (std::size_t r = 0; r < 5; ++r) m.Set(r, 1, 2.0 + double(r));
  for (std::size_t r = 0; r < 4; ++r) m.Set(r, 0, 1.0 + double(r));
  NeighborhoodConfig cfg;
  cfg.significance_gamma = 0;
  Ipcc ipcc(cfg);
  ipcc.Fit(m);
  // service 0 mean = 2.5; neighbor (service 1) mean = 4.0, value by user 4
  // = 6 -> prediction 2.5 + (6-4) = 4.5.
  EXPECT_NEAR(ipcc.Predict(4, 0), 4.5, 1e-9);
}

TEST(IpccTest, FallsBackToServiceMeanWithoutNeighbors) {
  data::SparseMatrix m(3, 3);
  m.Set(0, 0, 2.0);
  m.Set(1, 0, 4.0);
  // User 2 observed nothing -> no candidate neighbor services; fall back
  // to service 0's mean.
  Ipcc ipcc;
  ipcc.Fit(m);
  EXPECT_DOUBLE_EQ(ipcc.Predict(2, 0), 3.0);
}

TEST(IpccTest, FallsBackForColdService) {
  data::SparseMatrix m(2, 3);
  m.Set(0, 0, 2.0);
  m.Set(0, 1, 6.0);
  // Service 2 never observed -> fall back to user 0's mean.
  Ipcc ipcc;
  ipcc.Fit(m);
  EXPECT_DOUBLE_EQ(ipcc.Predict(0, 2), 4.0);
}

TEST(IpccTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  Ipcc ipcc;
  ipcc.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(ipcc, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
}

TEST(IpccTest, PredictionsAreFinite) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  const data::TrainTestSplit split = testutil::Split(slice, 0.1);
  Ipcc ipcc;
  ipcc.Fit(split.train);
  for (const auto& s : split.test) {
    EXPECT_TRUE(std::isfinite(ipcc.Predict(s.user, s.service)));
  }
}

}  // namespace
}  // namespace amf::cf

#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amf::linalg {
namespace {

TEST(VectorOpsTest, Dot) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(Dot(std::span<const double>{}, {}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  const std::vector<double> x = {1, 2};
  std::vector<double> y = {10, 20};
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x = {1, -2, 3};
  Scale(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(VectorOpsTest, Norms) {
  const std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(NormSquared(x), 25.0);
}

TEST(VectorOpsTest, Subtract) {
  const std::vector<double> a = {5, 7};
  const std::vector<double> b = {2, 10};
  std::vector<double> out(2);
  Subtract(a, b, out);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], -3.0);
}

TEST(VectorOpsTest, NormalizeInPlace) {
  std::vector<double> x = {3, 4};
  const double n = NormalizeInPlace(x);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
  EXPECT_DOUBLE_EQ(x[1], 0.8);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-15);
}

TEST(VectorOpsTest, NormalizeZeroVectorIsNoOp) {
  std::vector<double> x = {0, 0, 0};
  const double n = NormalizeInPlace(x);
  EXPECT_DOUBLE_EQ(n, 0.0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace amf::linalg

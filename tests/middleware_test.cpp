#include "adapt/middleware.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/synthetic.h"

namespace amf::adapt {
namespace {

data::SyntheticQoSDataset MakeDataset() {
  data::SyntheticConfig cfg;
  cfg.users = 4;
  cfg.services = 8;
  cfg.slices = 4;
  cfg.seed = 6;
  return data::SyntheticQoSDataset(cfg);
}

Workflow MakeWorkflow() {
  return Workflow({{"a", {0, 1, 2}}, {"b", {3, 4, 5}}});
}

TEST(MiddlewareTest, StepInvokesEveryTask) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  NoAdaptationPolicy policy;
  ExecutionMiddleware mw(0, MakeWorkflow(), env, nullptr, policy, 2.0);
  mw.Step(0.0);
  EXPECT_EQ(mw.stats().invocations, 2u);
  mw.Step(900.0);
  EXPECT_EQ(mw.stats().invocations, 4u);
  EXPECT_GT(mw.stats().total_rt, 0.0);
}

TEST(MiddlewareTest, ViolationsCounted) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  NoAdaptationPolicy policy;
  // Absurdly tight SLA: everything violates.
  ExecutionMiddleware tight(0, MakeWorkflow(), env, nullptr, policy, 1e-6);
  tight.Step(0.0);
  EXPECT_EQ(tight.stats().violations, 2u);
  // Absurdly loose SLA: nothing violates.
  ExecutionMiddleware loose(0, MakeWorkflow(), env, nullptr, policy, 1e6);
  loose.Step(0.0);
  EXPECT_EQ(loose.stats().violations, 0u);
}

TEST(MiddlewareTest, FailedInvocationCountsAsFailureAndViolation) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  env.AddOutage({0, 0.0, 1e9});
  NoAdaptationPolicy policy;
  ExecutionMiddleware mw(0, MakeWorkflow(), env, nullptr, policy, 1e6);
  mw.Step(0.0);
  EXPECT_EQ(mw.stats().failures, 1u);
  EXPECT_EQ(mw.stats().violations, 1u);
}

TEST(MiddlewareTest, ObservationsReportedToService) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  QoSPredictionService service;
  // The service only accepts observations for registered entities; the
  // middleware's user and the workflow's bound services must have joined.
  service.RegisterUser("app-0");
  for (int s = 0; s < 8; ++s) {
    service.RegisterService("svc-" + std::to_string(s));
  }
  NoAdaptationPolicy policy;
  ExecutionMiddleware mw(0, MakeWorkflow(), env, &service, policy, 2.0);
  mw.Step(0.0);
  EXPECT_EQ(service.observations(), 2u);
}

TEST(MiddlewareTest, UnregisteredObservationsAreRefused) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  QoSPredictionService service;  // nothing registered
  NoAdaptationPolicy policy;
  ExecutionMiddleware mw(0, MakeWorkflow(), env, &service, policy, 2.0);
  mw.Step(0.0);
  EXPECT_EQ(service.observations(), 0u);
  EXPECT_EQ(service.pipeline_stats().rejected_unregistered, 2u);
}

TEST(MiddlewareTest, PolicyRebindChangesWorkflowAndCounts) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  // Down the initial binding of task "a" so any violation-driven policy
  // must move off it.
  env.AddOutage({0, 0.0, 1e9});
  OraclePolicy policy(env);
  ExecutionMiddleware mw(0, MakeWorkflow(), env, nullptr, policy, 1e6);
  mw.Step(0.0);
  EXPECT_NE(mw.workflow().binding(0), 0u);
  EXPECT_EQ(mw.stats().adaptations, 1u);
}

TEST(MiddlewareTest, MeanRtAndViolationRate) {
  AppStats s;
  s.invocations = 4;
  s.total_rt = 8.0;
  s.violations = 1;
  EXPECT_DOUBLE_EQ(s.MeanRt(), 2.0);
  EXPECT_DOUBLE_EQ(s.ViolationRate(), 0.25);
  const AppStats empty;
  EXPECT_DOUBLE_EQ(empty.MeanRt(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ViolationRate(), 0.0);
}

TEST(MiddlewareTest, InvalidSlaThrows) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  NoAdaptationPolicy policy;
  EXPECT_THROW(
      ExecutionMiddleware(0, MakeWorkflow(), env, nullptr, policy, 0.0),
      common::CheckError);
}

}  // namespace
}  // namespace amf::adapt

#include "adapt/concurrent_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "linalg/matrix.h"

namespace amf::adapt {
namespace {

TEST(ConcurrentServiceTest, BasicFlowMatchesPlainService) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 100; ++i) {
    service.ReportObservation({0, u, s, 1.2, 0.0});
    service.Tick(0.0);
  }
  const auto pred = service.PredictQoS(u, s);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 1.2, 0.5);
  EXPECT_EQ(service.observations(), 100u);
}

TEST(ConcurrentServiceTest, PredictUnknownIsNullopt) {
  ConcurrentPredictionService service;
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
}

TEST(ConcurrentServiceTest, ConcurrentReadersAndWriters) {
  ConcurrentPredictionService service;
  const std::size_t kUsers = 8, kServices = 16;
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_predictions{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load()) {
        const auto pred =
            service.PredictQoS(static_cast<data::UserId>(i % kUsers),
                               static_cast<data::ServiceId>(i % kServices));
        if (!pred || !std::isfinite(*pred)) {
          bad_predictions.fetch_add(1);
        }
        ++i;
      }
    });
  }

  std::thread writer([&] {
    for (int iter = 0; iter < 200; ++iter) {
      for (std::size_t u = 0; u < kUsers; ++u) {
        service.ReportObservation(
            {0, static_cast<data::UserId>(u),
             static_cast<data::ServiceId>((u + iter) % kServices),
             0.5 + 0.01 * (iter % 10), 0.0});
      }
      service.Tick(0.0);
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_predictions.load(), 0u);
  EXPECT_EQ(service.observations(), 200u * kUsers);
}

TEST(ConcurrentServiceTest, TrainToConvergenceUnderReads) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s1 = service.RegisterService("s1");
  const auto s2 = service.RegisterService("s2");
  for (int i = 0; i < 10; ++i) {
    service.ReportObservation({0, u, s1, 0.1, 0.0});
    service.ReportObservation({0, u, s2, 6.0, 0.0});
  }
  std::thread reader([&] {
    for (int i = 0; i < 1000; ++i) {
      (void)service.PredictQoS(u, s1);
    }
  });
  service.TrainToConvergence(0.0);
  reader.join();
  EXPECT_LT(*service.PredictQoS(u, s1), *service.PredictQoS(u, s2));
}

TEST(ConcurrentServiceTest, PipelineStatsWaitFreeDuringTraining) {
  PredictionServiceConfig cfg;
  // Never declare convergence: run all max_epochs so training holds
  // train_mu_ for a deterministically long window (~tens of ms).
  cfg.trainer.convergence_patience = 1'000'000;
  cfg.trainer.max_epochs = 1500;
  ConcurrentPredictionService service(cfg);
  const std::size_t kUsers = 16, kServices = 64;
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  for (std::size_t i = 0; i < 2000; ++i) {
    service.ReportObservation({0, static_cast<data::UserId>(i % kUsers),
                               static_cast<data::ServiceId>(i % kServices),
                               0.2 + 0.001 * static_cast<double>(i % 50),
                               static_cast<double>(i) * 1e-3});
    if (i % 500 == 0) service.Tick(static_cast<double>(i) * 1e-3);
  }

  std::atomic<bool> started{false}, done{false};
  std::thread trainer([&] {
    started.store(true);
    service.TrainToConvergence(10.0);
    done.store(true);
  });
  while (!started.load()) std::this_thread::yield();
  // pipeline_stats() must complete while train_mu_ is held by the trainer
  // thread: count snapshots that finished strictly mid-training.
  std::size_t during = 0;
  std::uint64_t last_updates = 0;
  while (!done.load()) {
    const bool before = done.load();
    const core::PipelineStats stats = service.pipeline_stats();
    const obs::MetricsSnapshot snap = service.metrics().Snapshot();
    if (!before && !done.load()) ++during;
    EXPECT_GT(stats.accepted, 0u);  // ingest happened before training
    const std::uint64_t updates = snap.CounterValue("trainer.updates");
    EXPECT_GE(updates, last_updates);  // counters are monotonic
    last_updates = updates;
  }
  trainer.join();
  EXPECT_GE(during, 1u)
      << "no stats snapshot completed while training was in flight";
}

TEST(ConcurrentServiceTest, ShedLoadFullyAccounted) {
  PredictionServiceConfig cfg;
  cfg.trainer.max_incoming = 4;  // trainer queue sheds the drained batch
  ConcurrentPredictionService service(cfg, /*ring_capacity=*/8);
  constexpr std::size_t kTotal = 100;
  std::size_t ring_accepted = 0;
  for (std::size_t i = 0; i < kTotal; ++i) {
    // Valid, distinct samples: any loss is capacity shedding, not
    // validation.
    if (service.ReportObservation({0, static_cast<data::UserId>(i), 0, 1.0,
                                   static_cast<double>(i)})) {
      ++ring_accepted;
    }
  }
  EXPECT_EQ(ring_accepted, 8u);  // ring capacity
  service.Tick(200.0);

  const core::PipelineStats stats = service.pipeline_stats();
  EXPECT_EQ(stats.ring_dropped, kTotal - 8);
  EXPECT_EQ(stats.dropped_on_overflow, 8u - cfg.trainer.max_incoming);
  EXPECT_EQ(stats.accepted, cfg.trainer.max_incoming);
  // Every sample is accounted exactly once across the shed stages
  // (ring, journal, trainer queue) and the validator verdicts — nothing
  // vanishes silently. No journal is enabled here, so journal_dropped
  // must stay zero; wal_recovery_test exercises the nonzero case.
  EXPECT_EQ(stats.journal_dropped, 0u);
  EXPECT_EQ(stats.ring_dropped + stats.journal_dropped +
                stats.dropped_on_overflow + stats.seen(),
            kTotal);
  EXPECT_EQ(stats.dropped(), stats.ring_dropped + stats.dropped_on_overflow +
                                 stats.journal_dropped);

  // Both shed stages appear as distinct counters in one metrics snapshot.
  const obs::MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("ingest.ring_dropped"), kTotal - 8);
  EXPECT_EQ(snap.CounterValue("trainer.queue_dropped"),
            8u - cfg.trainer.max_incoming);
  EXPECT_EQ(snap.CounterValue("ingest.reported"), 8u);
}

TEST(ConcurrentServiceTest, RetirementDefersToTrainingBarrier) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  service.RegisterService("s");
  EXPECT_FALSE(service.RetireUser("ghost"));
  EXPECT_TRUE(service.RetireUser("u"));
  // Queued, not applied: the slot stays active until the next barrier.
  auto occ = service.registry_occupancy();
  EXPECT_EQ(occ.users_active, 1u);
  EXPECT_EQ(occ.users_free, 0u);
  service.Tick(1.0);  // the barrier applies pending retirements
  occ = service.registry_occupancy();
  EXPECT_EQ(occ.users_active, 0u);
  EXPECT_EQ(occ.users_free, 1u);
  // The reclaimed slot recycles for the next tenant.
  EXPECT_EQ(service.RegisterUser("v"), u);
  EXPECT_EQ(service.registry_occupancy().users_free, 0u);
}

TEST(ConcurrentServiceTest, RingResidueForRetiredSlotIsRefused) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  service.ReportObservation({0, u, s, 1.0, 0.0});
  service.Tick(0.0);
  EXPECT_EQ(service.pipeline_stats().rejected_unregistered, 0u);
  // An upload races a retirement: the sample sits in the ring when the
  // retire lands. The barrier applies the retirement BEFORE replaying the
  // staged batch, so the residue must be refused, not trained into the
  // recycled slot.
  service.ReportObservation({0, u, s, 1.0, 1.0});
  EXPECT_TRUE(service.RetireUser("u"));
  service.Tick(1.0);
  EXPECT_EQ(service.pipeline_stats().rejected_unregistered, 1u);
}

TEST(ConcurrentServiceTest, MetricsSnapshotCarriesInstrumentedSeries) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 32; ++i) {
    service.ReportObservation({0, u, s, 1.0, static_cast<double>(i)});
  }
  service.Tick(100.0);
  service.PredictQoS(u, s);
  std::vector<data::ServiceId> candidates{s, s};
  std::vector<double> values(candidates.size());
  service.PredictQoSMany(u, candidates, values);
  linalg::Matrix matrix;
  service.PredictMatrix(&matrix);
  ASSERT_EQ(matrix.rows(), 1u);
  ASSERT_EQ(matrix.cols(), 1u);
  EXPECT_TRUE(std::isfinite(matrix(0, 0)));
  EXPECT_NEAR(matrix(0, 0), *service.PredictQoS(u, s), 1e-12);

  const obs::MetricsSnapshot snap = service.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("predict.calls"), 2u);  // incl. the NEAR read
  EXPECT_EQ(snap.CounterValue("predict.batch_calls"), 1u);
  EXPECT_EQ(snap.CounterValue("predict.batch_candidates"), 2u);
  EXPECT_EQ(snap.CounterValue("predict.matrix_calls"), 1u);
  EXPECT_GT(snap.CounterValue("trainer.updates"), 0u);
  EXPECT_GT(snap.CounterValue("pipeline.accepted"), 0u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("ingest.ring_capacity"), 4096.0);
  const obs::HistogramSnapshot* lat = snap.FindHistogram("predict.seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->total, 2u);
  ASSERT_NE(snap.FindHistogram("trainer.epoch_seconds"), nullptr);
  EXPECT_TRUE(snap.HasCounter("predict.seqlock_retries"));
}

}  // namespace
}  // namespace amf::adapt

#include "adapt/concurrent_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace amf::adapt {
namespace {

TEST(ConcurrentServiceTest, BasicFlowMatchesPlainService) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 100; ++i) {
    service.ReportObservation({0, u, s, 1.2, 0.0});
    service.Tick(0.0);
  }
  const auto pred = service.PredictQoS(u, s);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 1.2, 0.5);
  EXPECT_EQ(service.observations(), 100u);
}

TEST(ConcurrentServiceTest, PredictUnknownIsNullopt) {
  ConcurrentPredictionService service;
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
}

TEST(ConcurrentServiceTest, ConcurrentReadersAndWriters) {
  ConcurrentPredictionService service;
  const std::size_t kUsers = 8, kServices = 16;
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> bad_predictions{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load()) {
        const auto pred =
            service.PredictQoS(static_cast<data::UserId>(i % kUsers),
                               static_cast<data::ServiceId>(i % kServices));
        if (!pred || !std::isfinite(*pred)) {
          bad_predictions.fetch_add(1);
        }
        ++i;
      }
    });
  }

  std::thread writer([&] {
    for (int iter = 0; iter < 200; ++iter) {
      for (std::size_t u = 0; u < kUsers; ++u) {
        service.ReportObservation(
            {0, static_cast<data::UserId>(u),
             static_cast<data::ServiceId>((u + iter) % kServices),
             0.5 + 0.01 * (iter % 10), 0.0});
      }
      service.Tick(0.0);
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_predictions.load(), 0u);
  EXPECT_EQ(service.observations(), 200u * kUsers);
}

TEST(ConcurrentServiceTest, TrainToConvergenceUnderReads) {
  ConcurrentPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s1 = service.RegisterService("s1");
  const auto s2 = service.RegisterService("s2");
  for (int i = 0; i < 10; ++i) {
    service.ReportObservation({0, u, s1, 0.1, 0.0});
    service.ReportObservation({0, u, s2, 6.0, 0.0});
  }
  std::thread reader([&] {
    for (int i = 0; i < 1000; ++i) {
      (void)service.PredictQoS(u, s1);
    }
  });
  service.TrainToConvergence(0.0);
  reader.join();
  EXPECT_LT(*service.PredictQoS(u, s1), *service.PredictQoS(u, s2));
}

}  // namespace
}  // namespace amf::adapt

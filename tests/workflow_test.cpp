#include "adapt/workflow.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace amf::adapt {
namespace {

Workflow MakeWorkflow() {
  return Workflow({{"a", {0, 1, 2}}, {"b", {3, 4}}});
}

TEST(WorkflowTest, InitialBindingIsFirstCandidate) {
  const Workflow wf = MakeWorkflow();
  EXPECT_EQ(wf.num_tasks(), 2u);
  EXPECT_EQ(wf.binding(0), 0u);
  EXPECT_EQ(wf.binding(1), 3u);
  EXPECT_EQ(wf.adaptations(), 0u);
}

TEST(WorkflowTest, RebindToCandidate) {
  Workflow wf = MakeWorkflow();
  wf.Rebind(0, 2);
  EXPECT_EQ(wf.binding(0), 2u);
  EXPECT_EQ(wf.adaptations(), 1u);
}

TEST(WorkflowTest, RebindToSameIsNotAnAdaptation) {
  Workflow wf = MakeWorkflow();
  wf.Rebind(0, 0);
  EXPECT_EQ(wf.adaptations(), 0u);
}

TEST(WorkflowTest, RebindToNonCandidateThrows) {
  Workflow wf = MakeWorkflow();
  EXPECT_THROW(wf.Rebind(0, 4), common::CheckError);
  EXPECT_THROW(wf.Rebind(1, 0), common::CheckError);
}

TEST(WorkflowTest, TaskAccess) {
  const Workflow wf = MakeWorkflow();
  EXPECT_EQ(wf.task(0).name, "a");
  EXPECT_EQ(wf.task(1).candidates.size(), 2u);
  EXPECT_THROW(wf.task(2), common::CheckError);
}

TEST(WorkflowTest, EmptyWorkflowThrows) {
  EXPECT_THROW(Workflow(std::vector<AbstractTask>{}), common::CheckError);
}

TEST(WorkflowTest, TaskWithoutCandidatesThrows) {
  EXPECT_THROW(Workflow(std::vector<AbstractTask>{{"empty", {}}}),
               common::CheckError);
}

TEST(WorkflowTest, OutOfRangeBindingThrows) {
  const Workflow wf = MakeWorkflow();
  EXPECT_THROW(wf.binding(5), common::CheckError);
}

}  // namespace
}  // namespace amf::adapt

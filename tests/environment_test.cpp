#include "adapt/environment.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/synthetic.h"

namespace amf::adapt {
namespace {

data::SyntheticQoSDataset MakeDataset() {
  data::SyntheticConfig cfg;
  cfg.users = 6;
  cfg.services = 10;
  cfg.slices = 4;
  cfg.seed = 2;
  return data::SyntheticQoSDataset(cfg);
}

TEST(EnvironmentTest, InvokeReturnsDatasetValue) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  const InvocationResult r = env.Invoke(1, 2, 950.0);  // slice 1
  EXPECT_FALSE(r.failed);
  EXPECT_DOUBLE_EQ(
      r.response_time,
      dataset.Value(data::QoSAttribute::kResponseTime, 1, 2, 1));
}

TEST(EnvironmentTest, SliceMapping) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  EXPECT_EQ(env.SliceAt(-5.0), 0u);
  EXPECT_EQ(env.SliceAt(0.0), 0u);
  EXPECT_EQ(env.SliceAt(899.9), 0u);
  EXPECT_EQ(env.SliceAt(900.0), 1u);
  EXPECT_EQ(env.SliceAt(1e9), 3u);  // clamped to last slice
}

TEST(EnvironmentTest, OutageProducesTimeout) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0, /*timeout=*/20.0);
  env.AddOutage({3, 100.0, 200.0});
  EXPECT_TRUE(env.IsDown(3, 150.0));
  EXPECT_FALSE(env.IsDown(3, 99.0));
  EXPECT_FALSE(env.IsDown(3, 200.0));  // to is exclusive
  EXPECT_FALSE(env.IsDown(2, 150.0));
  const InvocationResult r = env.Invoke(0, 3, 150.0);
  EXPECT_TRUE(r.failed);
  EXPECT_DOUBLE_EQ(r.response_time, 20.0);
}

TEST(EnvironmentTest, TrueResponseTimeIgnoresOutage) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  env.AddOutage({3, 0.0, 1e9});
  EXPECT_DOUBLE_EQ(
      env.TrueResponseTime(0, 3, 0.0),
      dataset.Value(data::QoSAttribute::kResponseTime, 0, 3, 0));
}

TEST(EnvironmentTest, InvalidOutageThrows) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  EXPECT_THROW(env.AddOutage({0, 100.0, 100.0}), common::CheckError);
  EXPECT_THROW(env.AddOutage({99, 0.0, 1.0}), common::CheckError);
}

TEST(EnvironmentTest, InvalidConstructionThrows) {
  const auto dataset = MakeDataset();
  EXPECT_THROW(Environment(dataset, 0.0), common::CheckError);
  EXPECT_THROW(Environment(dataset, 900.0, 0.0), common::CheckError);
}

}  // namespace
}  // namespace amf::adapt

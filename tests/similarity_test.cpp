#include "cf/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace amf::cf {
namespace {

TEST(PearsonCorrelationTest, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(*PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonCorrelationTest, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 2, 1};
  EXPECT_NEAR(*PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, DegenerateCases) {
  EXPECT_FALSE(PearsonCorrelation({1.0}, {2.0}).has_value());
  EXPECT_FALSE(PearsonCorrelation({1.0, 1.0}, {2.0, 3.0}).has_value());
  EXPECT_FALSE(PearsonCorrelation({}, {}).has_value());
}

TEST(SimilarityMatrixTest, SymmetricStorage) {
  SimilarityMatrix sim(3);
  sim.Set(0, 2, 0.5f);
  EXPECT_FLOAT_EQ(sim.At(0, 2), 0.5f);
  EXPECT_FLOAT_EQ(sim.At(2, 0), 0.5f);
  EXPECT_FLOAT_EQ(sim.At(1, 2), 0.0f);
  EXPECT_EQ(sim.size(), 3u);
}

data::SparseMatrix CorrelatedUsers() {
  // Users 0 and 1 perfectly correlated; user 2 anti-correlated with both.
  data::SparseMatrix m(3, 4);
  const double u0[] = {1, 2, 3, 4};
  const double u1[] = {2, 4, 6, 8};
  const double u2[] = {4, 3, 2, 1};
  for (std::size_t c = 0; c < 4; ++c) {
    m.Set(0, c, u0[c]);
    m.Set(1, c, u1[c]);
    m.Set(2, c, u2[c]);
  }
  return m;
}

TEST(UserSimilaritiesTest, RecoversCorrelationStructure) {
  SimilarityOptions opts;
  opts.significance_gamma = 0;  // pure PCC
  opts.parallel = false;
  const SimilarityMatrix sim = UserSimilarities(CorrelatedUsers(), opts);
  EXPECT_NEAR(sim.At(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(sim.At(0, 2), -1.0, 1e-6);
  EXPECT_NEAR(sim.At(1, 2), -1.0, 1e-6);
}

TEST(UserSimilaritiesTest, SignificanceWeightingDampsSmallOverlap) {
  SimilarityOptions weighted;
  weighted.significance_gamma = 8;  // overlap 4 -> scale 0.5
  weighted.parallel = false;
  const SimilarityMatrix sim = UserSimilarities(CorrelatedUsers(), weighted);
  EXPECT_NEAR(sim.At(0, 1), 0.5, 1e-6);
}

TEST(UserSimilaritiesTest, MinOverlapEnforced) {
  data::SparseMatrix m(2, 5);
  // Only 2 co-observed items.
  m.Set(0, 0, 1.0);
  m.Set(0, 1, 2.0);
  m.Set(1, 0, 1.0);
  m.Set(1, 1, 2.0);
  SimilarityOptions opts;
  opts.min_overlap = 3;
  opts.parallel = false;
  const SimilarityMatrix sim = UserSimilarities(m, opts);
  EXPECT_FLOAT_EQ(sim.At(0, 1), 0.0f);
}

TEST(ServiceSimilaritiesTest, MirrorsUserComputation) {
  // Transpose of the user fixture: services are correlated the same way.
  data::SparseMatrix m(4, 3);
  const double u0[] = {1, 2, 3, 4};
  const double u1[] = {2, 4, 6, 8};
  const double u2[] = {4, 3, 2, 1};
  for (std::size_t r = 0; r < 4; ++r) {
    m.Set(r, 0, u0[r]);
    m.Set(r, 1, u1[r]);
    m.Set(r, 2, u2[r]);
  }
  SimilarityOptions opts;
  opts.significance_gamma = 0;
  opts.parallel = false;
  const SimilarityMatrix sim = ServiceSimilarities(m, opts);
  EXPECT_NEAR(sim.At(0, 1), 1.0, 1e-6);
  EXPECT_NEAR(sim.At(0, 2), -1.0, 1e-6);
}

TEST(SimilaritiesTest, ParallelMatchesSerial) {
  common::Rng rng(3);
  data::SparseMatrix m(80, 40);
  for (std::size_t r = 0; r < 80; ++r) {
    for (std::size_t c = 0; c < 40; ++c) {
      if (rng.Bernoulli(0.4)) m.Set(r, c, rng.Uniform(0.1, 5.0));
    }
  }
  SimilarityOptions serial;
  serial.parallel = false;
  SimilarityOptions parallel;
  parallel.parallel = true;
  const SimilarityMatrix a = UserSimilarities(m, serial);
  const SimilarityMatrix b = UserSimilarities(m, parallel);
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j < 80; ++j) {
      EXPECT_FLOAT_EQ(a.At(i, j), b.At(i, j));
    }
  }
}

TEST(TopKPositiveNeighborsTest, FiltersAndSorts) {
  SimilarityMatrix sim(5);
  sim.Set(0, 1, 0.9f);
  sim.Set(0, 2, -0.5f);  // negative: excluded
  sim.Set(0, 3, 0.3f);
  sim.Set(0, 4, 0.7f);
  const std::vector<std::uint32_t> candidates = {1, 2, 3, 4};
  const auto top2 = TopKPositiveNeighbors(sim, 0, candidates, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].index, 1u);
  EXPECT_EQ(top2[1].index, 4u);
  EXPECT_GT(top2[0].similarity, top2[1].similarity);
}

TEST(TopKPositiveNeighborsTest, ExcludesSelfAndHandlesShortLists) {
  SimilarityMatrix sim(3);
  sim.Set(0, 1, 0.4f);
  const std::vector<std::uint32_t> candidates = {0, 1, 2};
  const auto top = TopKPositiveNeighbors(sim, 0, candidates, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].index, 1u);
}

TEST(TopKPositiveNeighborsTest, EmptyCandidates) {
  SimilarityMatrix sim(2);
  EXPECT_TRUE(TopKPositiveNeighbors(sim, 0, {}, 5).empty());
}

}  // namespace
}  // namespace amf::cf

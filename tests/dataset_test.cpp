#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace amf::data {
namespace {

TEST(InMemoryDatasetTest, Dimensions) {
  InMemoryDataset d(3, 4, 2);
  EXPECT_EQ(d.num_users(), 3u);
  EXPECT_EQ(d.num_services(), 4u);
  EXPECT_EQ(d.num_slices(), 2u);
}

TEST(InMemoryDatasetTest, SetAndGetValue) {
  InMemoryDataset d(2, 2, 1);
  d.SetValue(QoSAttribute::kResponseTime, 0, 1, 0, 3.5);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 0, 1, 0), 3.5);
  EXPECT_TRUE(d.Has(QoSAttribute::kResponseTime, 0, 1, 0));
  EXPECT_FALSE(d.Has(QoSAttribute::kResponseTime, 1, 1, 0));
  EXPECT_FALSE(d.Has(QoSAttribute::kThroughput, 0, 1, 0));
}

TEST(InMemoryDatasetTest, AttributesAreIndependent) {
  InMemoryDataset d(1, 1, 1);
  d.SetValue(QoSAttribute::kResponseTime, 0, 0, 0, 1.0);
  d.SetValue(QoSAttribute::kThroughput, 0, 0, 0, 100.0);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kThroughput, 0, 0, 0), 100.0);
}

TEST(InMemoryDatasetTest, MissingValueThrows) {
  InMemoryDataset d(1, 1, 1);
  EXPECT_THROW(d.Value(QoSAttribute::kResponseTime, 0, 0, 0),
               common::CheckError);
}

TEST(InMemoryDatasetTest, DenseSliceReturnsStorage) {
  InMemoryDataset d(2, 2, 2);
  d.SetValue(QoSAttribute::kResponseTime, 1, 0, 1, 4.0);
  const linalg::Matrix slice = d.DenseSlice(QoSAttribute::kResponseTime, 1);
  EXPECT_DOUBLE_EQ(slice(1, 0), 4.0);
  EXPECT_TRUE(std::isnan(slice(0, 0)));
}

TEST(InMemoryDatasetTest, MutableSlice) {
  InMemoryDataset d(2, 2, 1);
  d.MutableSlice(QoSAttribute::kThroughput, 0).Fill(5.0);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kThroughput, 1, 1, 0), 5.0);
}

TEST(InMemoryDatasetTest, SliceOutOfRangeThrows) {
  InMemoryDataset d(1, 1, 1);
  EXPECT_THROW(d.DenseSlice(QoSAttribute::kResponseTime, 1),
               common::CheckError);
  EXPECT_THROW(d.SetValue(QoSAttribute::kResponseTime, 0, 0, 1, 1.0),
               common::CheckError);
}

TEST(AttributeNameTest, Names) {
  EXPECT_EQ(AttributeName(QoSAttribute::kResponseTime), "RT");
  EXPECT_EQ(AttributeName(QoSAttribute::kThroughput), "TP");
}

TEST(QoSSampleTest, Equality) {
  QoSSample a{1, 2, 3, 4.0, 5.0};
  QoSSample b = a;
  EXPECT_EQ(a, b);
  b.value = 9.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace amf::data

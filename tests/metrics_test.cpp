#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace amf::eval {
namespace {

/// Predictor that always returns a constant.
class ConstPredictor : public Predictor {
 public:
  explicit ConstPredictor(double v) : v_(v) {}
  std::string name() const override { return "const"; }
  void Fit(const data::SparseMatrix&) override {}
  double Predict(data::UserId, data::ServiceId) const override { return v_; }

 private:
  double v_;
};

TEST(ComputeMetricsTest, PerfectPredictions) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const Metrics m = ComputeMetrics(v, v);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
  EXPECT_DOUBLE_EQ(m.mre, 0.0);
  EXPECT_DOUBLE_EQ(m.npre, 0.0);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_EQ(m.count, 3u);
}

TEST(ComputeMetricsTest, KnownValues) {
  const std::vector<double> pred = {2.0, 2.0, 6.0, 1.0};
  const std::vector<double> truth = {1.0, 4.0, 4.0, 2.0};
  // abs errors: 1, 2, 2, 1 -> MAE 1.5
  // rel errors: 1, 0.5, 0.5, 0.5 -> MRE 0.5
  const Metrics m = ComputeMetrics(pred, truth);
  EXPECT_DOUBLE_EQ(m.mae, 1.5);
  EXPECT_DOUBLE_EQ(m.mre, 0.5);
  EXPECT_NEAR(m.rmse, std::sqrt((1.0 + 4.0 + 4.0 + 1.0) / 4.0), 1e-12);
  EXPECT_GT(m.npre, 0.5);  // 90th percentile between 0.5 and 1
  EXPECT_LE(m.npre, 1.0);
}

TEST(ComputeMetricsTest, NonPositiveTruthExcludedFromRelative) {
  const std::vector<double> pred = {1.0, 5.0};
  const std::vector<double> truth = {0.0, 4.0};
  const Metrics m = ComputeMetrics(pred, truth);
  EXPECT_DOUBLE_EQ(m.mae, 1.0);  // (1 + 1) / 2
  EXPECT_DOUBLE_EQ(m.mre, 0.25);  // only the positive-truth entry
}

TEST(ComputeMetricsTest, EmptyInput) {
  const Metrics m = ComputeMetrics({}, {});
  EXPECT_EQ(m.count, 0u);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
}

TEST(ComputeMetricsTest, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(ComputeMetrics(a, b), common::CheckError);
}

TEST(EvaluatePredictorTest, UsesPredictorOutput) {
  ConstPredictor p(2.0);
  const std::vector<data::QoSSample> test = {
      {0, 0, 0, 1.0, 0.0}, {0, 0, 1, 4.0, 0.0}};
  const Metrics m = EvaluatePredictor(p, test);
  EXPECT_DOUBLE_EQ(m.mae, 1.5);  // |2-1|=1, |2-4|=2
  EXPECT_EQ(m.count, 2u);
}

TEST(SignedErrorsTest, SignsPreserved) {
  ConstPredictor p(2.0);
  const std::vector<data::QoSSample> test = {
      {0, 0, 0, 1.0, 0.0}, {0, 0, 1, 5.0, 0.0}};
  const auto errs = SignedErrors(p, test);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_DOUBLE_EQ(errs[0], 1.0);
  EXPECT_DOUBLE_EQ(errs[1], -3.0);
}

TEST(RelativeErrorsTest, SkipsNonPositiveTruth) {
  ConstPredictor p(3.0);
  const std::vector<data::QoSSample> test = {
      {0, 0, 0, 0.0, 0.0}, {0, 0, 1, 2.0, 0.0}};
  const auto errs = RelativeErrors(p, test);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_DOUBLE_EQ(errs[0], 0.5);
}

TEST(AverageMetricsTest, ElementwiseMean) {
  Metrics a{1.0, 0.2, 0.4, 2.0, 10};
  Metrics b{3.0, 0.4, 0.8, 4.0, 20};
  const std::vector<Metrics> runs = {a, b};
  const Metrics avg = AverageMetrics(runs);
  EXPECT_DOUBLE_EQ(avg.mae, 2.0);
  EXPECT_DOUBLE_EQ(avg.mre, 0.3);
  EXPECT_DOUBLE_EQ(avg.npre, 0.6);
  EXPECT_DOUBLE_EQ(avg.rmse, 3.0);
  EXPECT_EQ(avg.count, 30u);
}

TEST(AverageMetricsTest, EmptyIsZero) {
  const Metrics avg = AverageMetrics({});
  EXPECT_EQ(avg.count, 0u);
  EXPECT_DOUBLE_EQ(avg.mae, 0.0);
}

}  // namespace
}  // namespace amf::eval

#include "eval/ranking.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"

namespace amf::eval {
namespace {

/// Predictor returning preset values per (user, service).
class TablePredictor : public Predictor {
 public:
  std::string name() const override { return "table"; }
  void Fit(const data::SparseMatrix&) override {}
  double Predict(data::UserId u, data::ServiceId s) const override {
    const auto it = table_.find({u, s});
    return it == table_.end() ? 0.0 : it->second;
  }
  void Set(data::UserId u, data::ServiceId s, double v) {
    table_[{u, s}] = v;
  }

 private:
  std::map<std::pair<data::UserId, data::ServiceId>, double> table_;
};

TEST(RankByValueTest, AscendingAndDescending) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_EQ(RankByValue(v, true), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(RankByValue(v, false), (std::vector<std::size_t>{0, 2, 1}));
}

TEST(RankByValueTest, StableOnTies) {
  const std::vector<double> v = {2.0, 1.0, 1.0};
  EXPECT_EQ(RankByValue(v, true), (std::vector<std::size_t>{1, 2, 0}));
}

TEST(EvaluateSelectionTest, PerfectPredictorIsPerfect) {
  TablePredictor p;
  const std::vector<data::ServiceId> cands = {10, 11, 12};
  const std::vector<double> truth = {0.5, 0.2, 0.9};
  for (std::size_t i = 0; i < cands.size(); ++i) {
    p.Set(0, cands[i], truth[i]);
  }
  const SelectionMetrics m = EvaluateSelection(p, 0, cands, truth, 3);
  EXPECT_TRUE(m.top1_hit);
  EXPECT_DOUBLE_EQ(m.relative_regret, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg_at_k, 1.0);
}

TEST(EvaluateSelectionTest, WrongPickHasRegret) {
  TablePredictor p;
  const std::vector<data::ServiceId> cands = {1, 2};
  const std::vector<double> truth = {1.0, 2.0};  // true best: service 1
  p.Set(0, 1, 5.0);  // predicted slow
  p.Set(0, 2, 0.1);  // predicted fast -> picked
  const SelectionMetrics m = EvaluateSelection(p, 0, cands, truth, 2);
  EXPECT_FALSE(m.top1_hit);
  EXPECT_DOUBLE_EQ(m.relative_regret, 1.0);  // (2 - 1) / 1
  EXPECT_LT(m.ndcg_at_k, 1.0);
}

TEST(EvaluateSelectionTest, LargerIsBetterAttribute) {
  // Throughput: bigger is better.
  TablePredictor p;
  const std::vector<data::ServiceId> cands = {1, 2};
  const std::vector<double> truth = {100.0, 10.0};
  p.Set(0, 1, 90.0);
  p.Set(0, 2, 20.0);
  const SelectionMetrics m =
      EvaluateSelection(p, 0, cands, truth, 2, /*smaller_is_better=*/false);
  EXPECT_TRUE(m.top1_hit);
  EXPECT_DOUBLE_EQ(m.relative_regret, 0.0);
}

TEST(EvaluateSelectionTest, TiedTruthCountsAsHit) {
  TablePredictor p;
  const std::vector<data::ServiceId> cands = {1, 2};
  const std::vector<double> truth = {1.0, 1.0};
  p.Set(0, 1, 0.9);
  p.Set(0, 2, 0.8);  // picks 2, equally good
  const SelectionMetrics m = EvaluateSelection(p, 0, cands, truth, 2);
  EXPECT_TRUE(m.top1_hit);
  EXPECT_DOUBLE_EQ(m.relative_regret, 0.0);
}

TEST(EvaluateSelectionTest, SingleCandidateTrivial) {
  TablePredictor p;
  p.Set(0, 7, 3.0);
  const std::vector<data::ServiceId> cands = {7};
  const std::vector<double> truth = {1.0};
  const SelectionMetrics m = EvaluateSelection(p, 0, cands, truth, 1);
  EXPECT_TRUE(m.top1_hit);
  EXPECT_DOUBLE_EQ(m.ndcg_at_k, 1.0);
}

TEST(EvaluateSelectionTest, InvalidInputsThrow) {
  TablePredictor p;
  const std::vector<data::ServiceId> cands = {1};
  const std::vector<double> truth = {1.0, 2.0};
  EXPECT_THROW(EvaluateSelection(p, 0, cands, truth, 1),
               common::CheckError);
  EXPECT_THROW(EvaluateSelection(p, 0, {}, {}, 1), common::CheckError);
  const std::vector<double> ok = {1.0};
  EXPECT_THROW(EvaluateSelection(p, 0, cands, ok, 0), common::CheckError);
}

TEST(AggregateTest, Averages) {
  std::vector<SelectionMetrics> results(4);
  results[0] = {true, 0.0, 1.0};
  results[1] = {false, 0.4, 0.5};
  results[2] = {true, 0.0, 1.0};
  results[3] = {false, 0.4, 0.5};
  const SelectionSummary s = Aggregate(results);
  EXPECT_DOUBLE_EQ(s.top1_hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_relative_regret, 0.2);
  EXPECT_DOUBLE_EQ(s.mean_ndcg_at_k, 0.75);
  EXPECT_EQ(s.decisions, 4u);
}

TEST(AggregateTest, EmptyIsZero) {
  const SelectionSummary s = Aggregate({});
  EXPECT_EQ(s.decisions, 0u);
  EXPECT_DOUBLE_EQ(s.top1_hit_rate, 0.0);
}

}  // namespace
}  // namespace amf::eval

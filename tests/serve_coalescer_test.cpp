// Coalescer semantics (serve/coalescer.h): the batch path must be a
// pure scheduling decision — every value PredictQoSPairs returns for a
// coalesced batch must be bit-identical at fp64 to what the per-request
// PredictQoS would have returned, so clients cannot observe whether
// their request was batched. Also covers the flush-policy triggers
// (max_batch cap, window aging, window==0 degradation) and unknown-id
// NaN routing.
#include "serve/coalescer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "adapt/concurrent_service.h"
#include "common/rng.h"
#include "core/amf_predictor.h"

namespace amf::serve {
namespace {

constexpr std::size_t kUsers = 24;
constexpr std::size_t kServices = 48;

// A quiescent (no trainer running) service with trained factors, so
// repeated predictions of the same pair are deterministic.
std::unique_ptr<adapt::ConcurrentPredictionService> MakeTrainedService() {
  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(2014);
  auto service =
      std::make_unique<adapt::ConcurrentPredictionService>(cfg, 4096);
  for (std::size_t u = 0; u < kUsers; ++u) {
    service->RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service->RegisterService("s" + std::to_string(s));
  }
  common::Rng rng(77);
  double now = 0.0;
  for (std::size_t i = 0; i < kUsers * kServices / 2; ++i) {
    now += 1e-3;
    service->ReportObservation(data::QoSSample{
        .slice = 0,
        .user = static_cast<data::UserId>(rng.Index(kUsers)),
        .service = static_cast<data::ServiceId>(rng.Index(kServices)),
        .value = rng.LogNormal(-1.0, 0.5),
        .timestamp = now});
    if ((i & 255) == 255) service->Tick(now);
  }
  service->TrainToConvergence(now);
  return service;
}

TEST(ServeCoalescerTest, BatchedValuesBitIdenticalToPerRequestPredict) {
  const auto service = MakeTrainedService();

  // Build a batch covering every (user, service) pair once, interleaved
  // the way concurrent connections would interleave them.
  Coalescer coalescer(CoalescerConfig{.window_us = 1e6, .max_batch = 1 << 20});
  std::vector<PendingPredict> batch;
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t s = 0; s < kServices; ++s) {
      PendingPredict req;
      req.conn_id = 1 + (u + s) % 7;
      req.request_id = u * kServices + s;
      req.user = static_cast<data::UserId>(u);
      req.service = static_cast<data::ServiceId>((s * 13 + u) % kServices);
      batch.push_back(req);
      coalescer.Add(req);
    }
  }

  std::size_t emitted = 0;
  const std::size_t flushed = coalescer.Flush(
      *service, [&](const PendingPredict& req, double value) {
        ASSERT_LT(emitted, batch.size());
        // Arrival order is preserved.
        EXPECT_EQ(req.request_id, batch[emitted].request_id);
        const auto solo = service->PredictQoS(req.user, req.service);
        ASSERT_TRUE(solo.has_value());
        // Bit-identical, not approximately equal: memcmp of the fp64
        // representations.
        EXPECT_EQ(std::memcmp(&value, &*solo, sizeof(double)), 0)
            << "pair (" << req.user << ", " << req.service
            << "): batched " << value << " vs solo " << *solo;
        ++emitted;
      });
  EXPECT_EQ(flushed, batch.size());
  EXPECT_EQ(emitted, batch.size());
  EXPECT_TRUE(coalescer.empty());
}

TEST(ServeCoalescerTest, UnknownEntitiesEmitNaN) {
  const auto service = MakeTrainedService();
  Coalescer coalescer(CoalescerConfig{.window_us = 1e6, .max_batch = 64});
  coalescer.Add(PendingPredict{.conn_id = 1, .request_id = 1, .user = 0,
                               .service = 0});
  coalescer.Add(PendingPredict{.conn_id = 1, .request_id = 2,
                               .user = kUsers + 100, .service = 0});
  coalescer.Add(PendingPredict{.conn_id = 1, .request_id = 3, .user = 0,
                               .service = kServices + 100});
  std::vector<double> values;
  coalescer.Flush(*service, [&](const PendingPredict&, double v) {
    values.push_back(v);
  });
  ASSERT_EQ(values.size(), 3u);
  EXPECT_FALSE(std::isnan(values[0]));
  EXPECT_TRUE(std::isnan(values[1]));
  EXPECT_TRUE(std::isnan(values[2]));
}

TEST(ServeCoalescerTest, AddSignalsFlushAtBatchCap) {
  Coalescer coalescer(CoalescerConfig{.window_us = 1e6, .max_batch = 3});
  EXPECT_FALSE(coalescer.Add(PendingPredict{.request_id = 1}));
  EXPECT_FALSE(coalescer.Add(PendingPredict{.request_id = 2}));
  EXPECT_TRUE(coalescer.Add(PendingPredict{.request_id = 3}));
  EXPECT_EQ(coalescer.size(), 3u);
}

TEST(ServeCoalescerTest, ZeroWindowDegeneratesToPerRequestDispatch) {
  Coalescer coalescer(CoalescerConfig{.window_us = 0.0, .max_batch = 64});
  EXPECT_TRUE(coalescer.Add(PendingPredict{.request_id = 1}));
}

TEST(ServeCoalescerTest, DueTracksTheOldestPendingRequest) {
  Coalescer coalescer(CoalescerConfig{.window_us = 500.0, .max_batch = 64});
  EXPECT_FALSE(coalescer.Due(100.0));  // empty: never due

  PendingPredict first;
  first.enqueued_monotonic_s = 100.0;
  coalescer.Add(first);
  EXPECT_FALSE(coalescer.Due(100.0));
  EXPECT_FALSE(coalescer.Due(100.0 + 400e-6));
  EXPECT_TRUE(coalescer.Due(100.0 + 500e-6));

  // A younger arrival must NOT push the deadline out.
  PendingPredict second;
  second.enqueued_monotonic_s = 100.0 + 450e-6;
  coalescer.Add(second);
  EXPECT_TRUE(coalescer.Due(100.0 + 500e-6));
  EXPECT_DOUBLE_EQ(coalescer.oldest_enqueue_s(), 100.0);
  EXPECT_NEAR(coalescer.SecondsUntilDue(100.0 + 300e-6), 200e-6, 1e-12);
  EXPECT_LE(coalescer.SecondsUntilDue(100.0 + 600e-6), 0.0);
}

TEST(ServeCoalescerTest, FlushOnEmptyIsANoOp) {
  const auto service = MakeTrainedService();
  Coalescer coalescer(CoalescerConfig{});
  bool emitted = false;
  EXPECT_EQ(coalescer.Flush(*service,
                            [&](const PendingPredict&, double) {
                              emitted = true;
                            }),
            0u);
  EXPECT_FALSE(emitted);
}

}  // namespace
}  // namespace amf::serve

// User-sharded multi-instance facade (adapt/sharded_service.h):
// registration lockstep, routed hot paths bit-identical to the home
// shard, mixed-batch scatter/gather, hogwild-style service-factor merge
// reconciliation (cross-shard row identity, cold-row skip, exact
// re-baselining), per-shard checkpoint/restore + manifest refusal, and
// a merge-vs-predict stress the TSan CI job runs.
#include "adapt/sharded_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/amf_predictor.h"
#include "core/checkpoint.h"
#include "stream/wal.h"

namespace amf::adapt {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kUsers = 16;
constexpr std::size_t kServices = 12;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sharded_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Deterministic per-shard config: fixed seed, no replay epochs per
/// tick, so model state is a pure function of the observation sequence.
ShardedServiceConfig Cfg(std::size_t shards,
                         std::size_t merge_every_ticks = 0) {
  ShardedServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.merge_every_ticks = merge_every_ticks;
  cfg.service = PredictionServiceConfig{core::MakeResponseTimeConfig(7),
                                        core::TrainerConfig{}, 0};
  return cfg;
}

void RegisterPopulation(ShardedPredictionService& s) {
  for (std::size_t u = 0; u < kUsers; ++u) {
    s.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t v = 0; v < kServices; ++v) {
    s.RegisterService("s" + std::to_string(v));
  }
}

/// Deterministic observation stream touching every shard (users 0..15
/// land on both halves of a 2-shard split and on all 4 quarters of a
/// 4-shard split — pinned by shard_router_test's golden hashes).
std::vector<data::QoSSample> Stream(std::size_t count, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<data::QoSSample> out;
  out.reserve(count);
  double now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    now += 1e-3;
    out.push_back(data::QoSSample{
        .slice = 0,
        .user = static_cast<data::UserId>(rng.Index(kUsers)),
        .service = static_cast<data::ServiceId>(rng.Index(kServices)),
        .value = rng.LogNormal(-1.0, 0.5),
        .timestamp = now});
  }
  return out;
}

void FeedAndTick(ShardedPredictionService& s,
                 const std::vector<data::QoSSample>& stream) {
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(s.ReportObservation(stream[i]));
    if ((i & 63) == 63) s.Tick(stream[i].timestamp);
  }
  s.Tick(stream.empty() ? 0.0 : stream.back().timestamp);
}

TEST(ShardedServiceTest, RegistrationAssignsGlobalIdsInLockstep) {
  ShardedPredictionService svc(Cfg(4));
  for (std::size_t u = 0; u < kUsers; ++u) {
    EXPECT_EQ(svc.RegisterUser("u" + std::to_string(u)),
              static_cast<data::UserId>(u));
  }
  for (std::size_t v = 0; v < kServices; ++v) {
    EXPECT_EQ(svc.RegisterService("s" + std::to_string(v)),
              static_cast<data::ServiceId>(v));
  }
  // The AMF_CHECK inside the fan-out would have thrown on any shard
  // assigning a different id; reaching here means lockstep held.
  EXPECT_EQ(svc.num_shards(), 4u);
}

TEST(ShardedServiceTest, RoutedPredictionsBitIdenticalToHomeShard) {
  ShardedPredictionService svc(Cfg(4));
  RegisterPopulation(svc);
  FeedAndTick(svc, Stream(512, 11));
  for (data::UserId u = 0; u < kUsers; ++u) {
    const std::size_t home = svc.router().ShardOf(u);
    for (data::ServiceId s = 0; s < kServices; ++s) {
      const auto via_facade = svc.PredictQoS(u, s);
      const auto via_home = svc.shard(home).PredictQoS(u, s);
      ASSERT_EQ(via_facade.has_value(), via_home.has_value());
      if (via_facade.has_value()) {
        EXPECT_EQ(*via_facade, *via_home) << "u=" << u << " s=" << s;
      }
    }
  }
}

TEST(ShardedServiceTest, MixedBatchPairsMatchPerRequestBitwise) {
  ShardedPredictionService svc(Cfg(4));
  RegisterPopulation(svc);
  FeedAndTick(svc, Stream(512, 13));
  // Interleave users so consecutive batch entries hit different shards.
  std::vector<data::UserId> users;
  std::vector<data::ServiceId> services;
  for (data::UserId u = 0; u < kUsers; ++u) {
    for (data::ServiceId s = 0; s < kServices; ++s) {
      users.push_back(u);
      services.push_back(s);
    }
  }
  std::vector<double> values(users.size(), -1.0);
  svc.PredictQoSPairs(users, services, values);
  for (std::size_t i = 0; i < users.size(); ++i) {
    const auto expect = svc.PredictQoS(users[i], services[i]);
    ASSERT_TRUE(expect.has_value());
    EXPECT_EQ(values[i], *expect) << "i=" << i;
  }
  // Unknown ids come back NaN through the pair kernel.
  const data::UserId unknown_user = kUsers + 100;
  std::vector<data::UserId> uu{unknown_user};
  std::vector<data::ServiceId> ss{0};
  std::vector<double> vv{0.0};
  svc.PredictQoSPairs(uu, ss, vv);
  EXPECT_TRUE(std::isnan(vv[0]));
}

TEST(ShardedServiceTest, PredictManyRoutesToHomeShard) {
  ShardedPredictionService svc(Cfg(2));
  RegisterPopulation(svc);
  FeedAndTick(svc, Stream(256, 17));
  std::vector<data::ServiceId> candidates;
  for (data::ServiceId s = 0; s < kServices; ++s) candidates.push_back(s);
  std::vector<double> values(kServices, 0.0);
  for (data::UserId u = 0; u < kUsers; ++u) {
    ASSERT_TRUE(svc.PredictQoSMany(u, candidates, values));
    for (data::ServiceId s = 0; s < kServices; ++s) {
      const auto expect = svc.PredictQoS(u, s);
      ASSERT_TRUE(expect.has_value());
      EXPECT_EQ(values[s], *expect) << "u=" << u << " s=" << s;
    }
  }
}

TEST(ShardedServiceTest, MergeReconcilesServiceRowsAcrossShards) {
  ShardedPredictionService svc(Cfg(2));
  RegisterPopulation(svc);
  // One service no observation ever touches: the merge must skip it.
  const data::ServiceId cold = svc.RegisterService("cold");
  FeedAndTick(svc, Stream(512, 19));

  // Shards trained on disjoint user partitions: their service-factor
  // replicas must have diverged.
  const auto before0 = svc.shard(0).SnapshotServiceFactors();
  const auto before1 = svc.shard(1).SnapshotServiceFactors();
  std::size_t divergent = 0;
  for (data::ServiceId s = 0; s < kServices; ++s) {
    for (std::size_t k = 0; k < before0.rank; ++k) {
      if (before0.factors[s * before0.rank + k] !=
          before1.factors[s * before1.rank + k]) {
        ++divergent;
        break;
      }
    }
  }
  EXPECT_GT(divergent, 0u);
  EXPECT_EQ(before0.versions[cold], 0u);
  EXPECT_EQ(before1.versions[cold], 0u);

  const std::size_t merged = svc.MergeServiceFactors();
  EXPECT_GT(merged, 0u);
  EXPECT_LE(merged, static_cast<std::size_t>(kServices));  // cold skipped
  EXPECT_EQ(svc.merges(), 1u);

  // Every replica row is now bit-identical across shards, and the cold
  // row was never published (version still 0 => still its init state).
  const auto after0 = svc.shard(0).SnapshotServiceFactors();
  const auto after1 = svc.shard(1).SnapshotServiceFactors();
  ASSERT_EQ(after0.num_services, after1.num_services);
  for (data::ServiceId s = 0; s < after0.num_services; ++s) {
    EXPECT_EQ(after0.errors[s], after1.errors[s]) << "s=" << s;
    for (std::size_t k = 0; k < after0.rank; ++k) {
      EXPECT_EQ(after0.factors[s * after0.rank + k],
                after1.factors[s * after1.rank + k])
          << "s=" << s << " k=" << k;
    }
  }
  EXPECT_EQ(after0.versions[cold], 0u);
  EXPECT_EQ(after1.versions[cold], 0u);
}

TEST(ShardedServiceTest, MergeWithNoNewTrainingIsANoOp) {
  ShardedPredictionService svc(Cfg(2));
  RegisterPopulation(svc);
  FeedAndTick(svc, Stream(256, 23));
  EXPECT_GT(svc.MergeServiceFactors(), 0u);
  // The re-baseline excluded the merge's own publishes, so with no new
  // training every weight is zero and nothing is published.
  EXPECT_EQ(svc.MergeServiceFactors(), 0u);
  EXPECT_EQ(svc.MergeServiceFactors(), 0u);
}

TEST(ShardedServiceTest, PeriodicMergeFollowsTickCadence) {
  ShardedServiceConfig cfg = Cfg(2, /*merge_every_ticks=*/3);
  ShardedPredictionService svc(cfg);
  RegisterPopulation(svc);
  for (const auto& s : Stream(64, 29)) svc.ReportObservation(s);
  svc.Tick(1.0);
  svc.Tick(2.0);
  EXPECT_EQ(svc.merges(), 0u);
  svc.Tick(3.0);  // third tick: merge fires
  EXPECT_EQ(svc.merges(), 1u);
}

core::CheckpointManagerConfig CkptCfg(const std::string& dir) {
  core::CheckpointManagerConfig cfg;
  cfg.directory = dir;
  cfg.interval_seconds = 1e9;  // only the first Tick checkpoints
  return cfg;
}

stream::JournalConfig WalCfg(const std::string& dir) {
  stream::JournalConfig cfg;
  cfg.directory = dir;
  cfg.fsync_policy = stream::FsyncPolicy::kAlways;
  return cfg;
}

TEST(ShardedServiceTest, SurvivorsBitIdenticalAfterCheckpointRestore) {
  const std::string ck = ScratchDir("ckpt_bitid");
  const auto stream = Stream(256, 31);
  std::vector<double> before(kUsers * kServices, 0.0);
  {
    ShardedPredictionService a(Cfg(2));
    RegisterPopulation(a);
    for (const auto& s : stream) ASSERT_TRUE(a.ReportObservation(s));
    a.EnableCheckpoints(CkptCfg(ck));
    a.Tick(10.0);  // drains, applies, checkpoints every shard
    for (data::UserId u = 0; u < kUsers; ++u) {
      for (data::ServiceId s = 0; s < kServices; ++s) {
        before[u * kServices + s] = *a.PredictQoS(u, s);
      }
    }
  }  // "crash" with nothing past the checkpoint

  ShardedPredictionService b(Cfg(2));
  RegisterPopulation(b);
  b.EnableCheckpoints(CkptCfg(ck));
  const auto rep = b.Recover();
  EXPECT_TRUE(rep.manifest_ok) << rep.manifest_error;
  EXPECT_EQ(rep.shards_restored, 2u);
  ASSERT_EQ(rep.shards.size(), 2u);
  std::size_t mismatches = 0;
  for (data::UserId u = 0; u < kUsers; ++u) {
    for (data::ServiceId s = 0; s < kServices; ++s) {
      const auto p = b.PredictQoS(u, s);
      ASSERT_TRUE(p.has_value());
      if (*p != before[u * kServices + s]) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(ShardedServiceTest, WalTailReplaysIntoEveryHomeShard) {
  const std::string ck = ScratchDir("wal_ck");
  const std::string wal = ScratchDir("wal_wal");
  const auto pre = Stream(128, 37);
  auto post = Stream(64, 41);
  for (auto& s : post) s.timestamp += 1.0;  // strictly after `pre`
  {
    ShardedPredictionService a(Cfg(2));
    RegisterPopulation(a);
    a.EnableCheckpoints(CkptCfg(ck));
    a.EnableJournal(WalCfg(wal));
    for (const auto& s : pre) ASSERT_TRUE(a.ReportObservation(s));
    a.Tick(10.0);  // journals + applies + checkpoints (the watermark)
    for (const auto& s : post) ASSERT_TRUE(a.ReportObservation(s));
    a.Tick(20.0);  // journals + applies the tail; NO second checkpoint
  }

  auto recover_once = [&](std::vector<double>* out) {
    ShardedPredictionService r(Cfg(2));
    RegisterPopulation(r);
    r.EnableCheckpoints(CkptCfg(ck));
    r.EnableJournal(WalCfg(wal));
    const auto rep = r.Recover();
    EXPECT_TRUE(rep.manifest_ok) << rep.manifest_error;
    EXPECT_EQ(rep.shards_restored, 2u);
    // Every tail record replays on exactly its home shard, none twice.
    EXPECT_EQ(rep.replayed, post.size());
    EXPECT_EQ(rep.rejected_generation, 0u);
    EXPECT_EQ(rep.quarantined_segments, 0u);
    out->assign(kUsers * kServices, 0.0);
    for (data::UserId u = 0; u < kUsers; ++u) {
      for (data::ServiceId s = 0; s < kServices; ++s) {
        const auto p = r.PredictQoS(u, s);
        ASSERT_TRUE(p.has_value());
        EXPECT_TRUE(std::isfinite(*p));
        (*out)[u * kServices + s] = *p;
      }
    }
  };
  std::vector<double> first, second;
  recover_once(&first);
  recover_once(&second);  // recovery is deterministic: bitwise repeatable
  EXPECT_EQ(first, second);
}

TEST(ShardedServiceTest, RecoverRefusesShardCountMismatch) {
  const std::string ck = ScratchDir("manifest_mismatch");
  {
    ShardedPredictionService four(Cfg(4));
    RegisterPopulation(four);
    four.EnableCheckpoints(CkptCfg(ck));
    four.Tick(1.0);
  }
  // Restoring 4 shard dirs into a 2-shard facade would route half of
  // every shard's users to the wrong model. The facade must refuse
  // without touching any shard.
  ShardedPredictionService two(Cfg(2));
  RegisterPopulation(two);
  two.EnableCheckpoints(CkptCfg(ck));  // must NOT clobber the manifest
  const auto rep = two.Recover();
  EXPECT_FALSE(rep.manifest_ok);
  EXPECT_NE(rep.manifest_error.find("4"), std::string::npos);
  EXPECT_EQ(rep.shards_restored, 0u);
  EXPECT_TRUE(rep.shards.empty());
}

TEST(ShardedServiceTest, RecoverRefusesTornManifest) {
  const std::string ck = ScratchDir("manifest_torn");
  {
    ShardedPredictionService a(Cfg(2));
    RegisterPopulation(a);
    a.EnableCheckpoints(CkptCfg(ck));
    a.Tick(1.0);
  }
  // Flip one byte inside the CRC-covered region.
  const std::string path =
      ck + "/" + ShardedPredictionService::kManifestName;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.find("num_shards") + std::string("num_shards ").size()] = '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  ShardedPredictionService b(Cfg(2));
  RegisterPopulation(b);
  b.EnableCheckpoints(CkptCfg(ck));
  const auto rep = b.Recover();
  EXPECT_FALSE(rep.manifest_ok);
  EXPECT_NE(rep.manifest_error.find("CRC"), std::string::npos);
  EXPECT_EQ(rep.shards_restored, 0u);
}

// Cross-shard merge-vs-predict stress: per-shard trainer threads tick
// their own shard, reader threads predict through the facade, and the
// main thread runs reconciliation merges the whole time. Run under TSan
// in CI — the interesting property is that merges serialize on each
// shard's epoch barrier while seqlock-published rows keep readers safe.
TEST(ShardedServiceTest, MergeVsPredictStress) {
  ShardedPredictionService svc(Cfg(2));
  RegisterPopulation(svc);
  FeedAndTick(svc, Stream(256, 43));

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  // One trainer per shard, feeding + ticking its own partition.
  for (std::size_t i = 0; i < svc.num_shards(); ++i) {
    workers.emplace_back([&svc, i, &stop] {
      common::Rng rng(100 + i);
      double now = 100.0 + static_cast<double>(i);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 32; ++k) {
          now += 1e-3;
          svc.ReportObservation(data::QoSSample{
              .slice = 0,
              .user = static_cast<data::UserId>(rng.Index(kUsers)),
              .service = static_cast<data::ServiceId>(rng.Index(kServices)),
              .value = rng.LogNormal(-1.0, 0.5),
              .timestamp = now});
        }
        svc.shard(i).Tick(now);
      }
    });
  }
  // Readers hammer routed single and mixed-batch predictions.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&svc, r, &stop] {
      common::Rng rng(200 + r);
      std::vector<data::UserId> users(8);
      std::vector<data::ServiceId> services(8);
      std::vector<double> values(8);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto u = static_cast<data::UserId>(rng.Index(kUsers));
        const auto s = static_cast<data::ServiceId>(rng.Index(kServices));
        const auto p = svc.PredictQoS(u, s);
        if (p.has_value()) {
          EXPECT_TRUE(std::isfinite(*p));
        }
        for (std::size_t i = 0; i < users.size(); ++i) {
          users[i] = static_cast<data::UserId>(rng.Index(kUsers));
          services[i] = static_cast<data::ServiceId>(rng.Index(kServices));
        }
        svc.PredictQoSPairs(users, services, values);
      }
    });
  }
  for (int m = 0; m < 20; ++m) svc.MergeServiceFactors();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();
  // A final merge after the barrier: replicas agree bitwise again.
  svc.MergeServiceFactors();
  const auto s0 = svc.shard(0).SnapshotServiceFactors();
  const auto s1 = svc.shard(1).SnapshotServiceFactors();
  ASSERT_EQ(s0.num_services, s1.num_services);
  for (std::size_t i = 0; i < s0.factors.size(); ++i) {
    EXPECT_EQ(s0.factors[i], s1.factors[i]);
  }
}

}  // namespace
}  // namespace amf::adapt

// Tests for check macros, logging, and the stopwatch.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/timer.h"

namespace amf::common {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(AMF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(AMF_CHECK_MSG(true, "never shown"));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    AMF_CHECK(1 == 2);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("common_util_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    AMF_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"),
              std::string::npos);
  }
}

TEST(CheckTest, DcheckActiveMatchesBuildMode) {
#ifdef NDEBUG
  EXPECT_NO_THROW(AMF_DCHECK(false));
#else
  EXPECT_THROW(AMF_DCHECK(false), CheckError);
#endif
}

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("garbage"), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateStream) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  AMF_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  AMF_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis() * 0.5);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 0.010);
}

}  // namespace
}  // namespace amf::common

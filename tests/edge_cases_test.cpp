// Edge-case sweep across modules: degenerate shapes, boundary values, and
// pathological-but-legal inputs that unit tests of the happy path miss.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cf/pmf.h"
#include "cf/uipcc.h"
#include "common/statistics.h"
#include "core/amf_predictor.h"
#include "data/masking.h"
#include "data/sparse_matrix.h"
#include "eval/metrics.h"
#include "linalg/svd.h"
#include "transform/qos_transform.h"

namespace amf {
namespace {

TEST(EdgeCasesTest, SparseMatrixZeroByZero) {
  data::SparseMatrix m(0, 0);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.Density(), 0.0);
  EXPECT_TRUE(m.ToSamples().empty());
}

TEST(EdgeCasesTest, SingleCellMatrix) {
  data::SparseMatrix m(1, 1);
  m.Set(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(m.Density(), 1.0);
  EXPECT_DOUBLE_EQ(m.GlobalMean(), 2.5);
}

TEST(EdgeCasesTest, MaskingAllNaNSlice) {
  linalg::Matrix slice(3, 3,
                       std::numeric_limits<double>::quiet_NaN());
  common::Rng rng(1);
  const data::TrainTestSplit split = data::SplitSlice(slice, 0.5, rng);
  EXPECT_EQ(split.train.nnz(), 0u);
  EXPECT_TRUE(split.test.empty());
}

TEST(EdgeCasesTest, AmfSingleObservation) {
  core::AmfPredictor amf(core::MakeResponseTimeConfig(1));
  data::SparseMatrix train(2, 2);
  train.Set(0, 0, 1.0);
  amf.Fit(train);
  // Every pair in the shape is predictable, even the untouched ones.
  for (data::UserId u = 0; u < 2; ++u) {
    for (data::ServiceId s = 0; s < 2; ++s) {
      EXPECT_TRUE(std::isfinite(amf.Predict(u, s)));
    }
  }
}

TEST(EdgeCasesTest, AmfValuesAtTransformBoundaries) {
  core::AmfModel model(core::MakeResponseTimeConfig(2));
  // Rmin, Rmax, and beyond must not produce non-finite state.
  model.OnlineUpdate(0, 0, 0.0);
  model.OnlineUpdate(0, 0, 20.0);
  model.OnlineUpdate(0, 0, 1e9);   // clamped to Rmax
  model.OnlineUpdate(0, 0, -5.0);  // clamped to floor
  EXPECT_TRUE(std::isfinite(model.PredictRaw(0, 0)));
  EXPECT_GE(model.UserError(0), 0.0);
}

TEST(EdgeCasesTest, PmfSingleUser) {
  data::SparseMatrix train(1, 5);
  for (std::size_t s = 0; s < 5; ++s) train.Set(0, s, 1.0 + s);
  cf::Pmf pmf;
  pmf.Fit(train);
  for (data::ServiceId s = 0; s < 5; ++s) {
    EXPECT_TRUE(std::isfinite(pmf.Predict(0, s)));
  }
}

TEST(EdgeCasesTest, UipccFullyDenseTinyMatrix) {
  data::SparseMatrix train(2, 2);
  train.Set(0, 0, 1.0);
  train.Set(0, 1, 2.0);
  train.Set(1, 0, 2.0);
  train.Set(1, 1, 4.0);
  cf::Uipcc uipcc;
  uipcc.Fit(train);
  EXPECT_TRUE(std::isfinite(uipcc.Predict(0, 0)));
  EXPECT_TRUE(std::isfinite(uipcc.Predict(1, 1)));
}

TEST(EdgeCasesTest, MetricsWithIdenticalConstantValues) {
  const std::vector<double> v(10, 3.0);
  const eval::Metrics m = eval::ComputeMetrics(v, v);
  EXPECT_DOUBLE_EQ(m.mre, 0.0);
  EXPECT_DOUBLE_EQ(m.npre, 0.0);
}

TEST(EdgeCasesTest, Svd1x1) {
  linalg::Matrix m(1, 1);
  m(0, 0) = -4.0;
  const auto sv = linalg::SingularValues(m);
  ASSERT_EQ(sv.size(), 1u);
  EXPECT_NEAR(sv[0], 4.0, 1e-12);
}

TEST(EdgeCasesTest, TransformExtremeAlphaStaysMonotone) {
  transform::QoSTransformConfig cfg;
  cfg.alpha = -2.0;  // far outside the tuned range, still legal
  const transform::QoSTransform t(cfg);
  double prev = t.Forward(0.01);
  for (double x = 0.02; x <= 20.0; x *= 1.5) {
    const double cur = t.Forward(x);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(EdgeCasesTest, HistogramSingleBin) {
  common::Histogram h(0.0, 1.0, 1);
  h.Add(0.2);
  h.Add(0.9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_DOUBLE_EQ(h.density(0), 1.0);
}

TEST(EdgeCasesTest, TrainerObserveSameValueManyTimes) {
  core::AmfModel model(core::MakeResponseTimeConfig(3));
  core::TrainerConfig cfg;
  cfg.expiry_seconds = 0.0;
  core::OnlineTrainer trainer(model, cfg);
  for (int i = 0; i < 50; ++i) {
    trainer.Observe({0, 0, 0, 1.0, 0.0});  // 50 refreshes of one pair
  }
  trainer.ProcessIncoming();
  EXPECT_EQ(trainer.store().size(), 1u);
  trainer.RunUntilConverged();
  EXPECT_NEAR(model.PredictRaw(0, 0), 1.0, 0.3);
}

}  // namespace
}  // namespace amf

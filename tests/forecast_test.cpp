#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "forecast/autoregressive.h"
#include "forecast/evaluation.h"
#include "forecast/exponential_smoothing.h"
#include "forecast/moving_average.h"

namespace amf::forecast {
namespace {

TEST(MovingAverageTest, WindowMean) {
  MovingAverage ma(3);
  ma.Observe(1.0);
  EXPECT_DOUBLE_EQ(ma.Forecast(), 1.0);
  ma.Observe(2.0);
  EXPECT_DOUBLE_EQ(ma.Forecast(), 1.5);
  ma.Observe(3.0);
  EXPECT_DOUBLE_EQ(ma.Forecast(), 2.0);
  ma.Observe(10.0);  // 1.0 falls out of the window
  EXPECT_DOUBLE_EQ(ma.Forecast(), 5.0);
  EXPECT_EQ(ma.count(), 4u);
}

TEST(MovingAverageTest, WindowOneIsLastValue) {
  MovingAverage ma(1);
  ma.Observe(5.0);
  ma.Observe(7.0);
  EXPECT_DOUBLE_EQ(ma.Forecast(), 7.0);
}

TEST(MovingAverageTest, ForecastBeforeObserveThrows) {
  MovingAverage ma(2);
  EXPECT_THROW(ma.Forecast(), common::CheckError);
}

TEST(MovingAverageTest, InvalidWindowThrows) {
  EXPECT_THROW(MovingAverage(0), common::CheckError);
}

TEST(MovingAverageTest, CloneIsFresh) {
  MovingAverage ma(2);
  ma.Observe(1.0);
  auto clone = ma.Clone();
  EXPECT_EQ(clone->count(), 0u);
  EXPECT_EQ(clone->name(), ma.name());
}

TEST(SesTest, FirstObservationSeedsLevel) {
  SimpleExponentialSmoothing ses(0.5);
  ses.Observe(4.0);
  EXPECT_DOUBLE_EQ(ses.Forecast(), 4.0);
  ses.Observe(8.0);
  EXPECT_DOUBLE_EQ(ses.Forecast(), 6.0);  // 4 + 0.5*(8-4)
}

TEST(SesTest, AlphaOneTracksLastValue) {
  SimpleExponentialSmoothing ses(1.0);
  ses.Observe(1.0);
  ses.Observe(9.0);
  EXPECT_DOUBLE_EQ(ses.Forecast(), 9.0);
}

TEST(SesTest, ConvergesToConstant) {
  SimpleExponentialSmoothing ses(0.3);
  for (int i = 0; i < 100; ++i) ses.Observe(2.5);
  EXPECT_NEAR(ses.Forecast(), 2.5, 1e-12);
}

TEST(SesTest, InvalidAlphaThrows) {
  EXPECT_THROW(SimpleExponentialSmoothing(0.0), common::CheckError);
  EXPECT_THROW(SimpleExponentialSmoothing(1.5), common::CheckError);
}

TEST(HoltTest, ExtrapolatesLinearTrend) {
  HoltLinear holt(0.8, 0.8);
  for (int i = 0; i < 50; ++i) holt.Observe(1.0 + 0.5 * i);
  // Next value of the ramp is 1.0 + 0.5 * 50 = 26.
  EXPECT_NEAR(holt.Forecast(), 26.0, 0.2);
}

TEST(HoltTest, BeatsSesOnTrendingSeries) {
  std::vector<double> ramp;
  for (int i = 0; i < 60; ++i) ramp.push_back(2.0 + 0.3 * i);
  const ForecastMetrics holt =
      EvaluateOneStep(HoltLinear(0.5, 0.3), ramp, 5);
  const ForecastMetrics ses =
      EvaluateOneStep(SimpleExponentialSmoothing(0.5), ramp, 5);
  EXPECT_LT(holt.mae, ses.mae);
}

TEST(LevinsonDurbinTest, KnownAr1) {
  // AR(1) with phi = 0.6: rho[k] = 0.6^k.
  const std::vector<double> rho = {1.0, 0.6};
  const auto phi = LevinsonDurbin(rho);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_NEAR(phi[0], 0.6, 1e-12);
}

TEST(LevinsonDurbinTest, KnownAr2) {
  // AR(2) phi = (0.5, 0.3): rho1 = phi1/(1-phi2) = 0.714285...,
  // rho2 = phi1*rho1 + phi2 = 0.657142...
  const double rho1 = 0.5 / 0.7;
  const double rho2 = 0.5 * rho1 + 0.3;
  const auto phi = LevinsonDurbin({1.0, rho1, rho2});
  ASSERT_EQ(phi.size(), 2u);
  EXPECT_NEAR(phi[0], 0.5, 1e-9);
  EXPECT_NEAR(phi[1], 0.3, 1e-9);
}

TEST(LevinsonDurbinTest, BadInputThrows) {
  EXPECT_THROW(LevinsonDurbin({1.0}), common::CheckError);
  EXPECT_THROW(LevinsonDurbin({0.9, 0.5}), common::CheckError);
}

TEST(AutoRegressiveTest, RecoversAr1Coefficient) {
  common::Rng rng(4);
  AutoRegressive ar(1, 256);
  double x = 0.0;
  for (int i = 0; i < 300; ++i) {
    x = 0.7 * x + rng.Normal(0.0, 0.1);
    ar.Observe(5.0 + x);
  }
  (void)ar.Forecast();
  ASSERT_EQ(ar.last_coefficients().size(), 1u);
  EXPECT_NEAR(ar.last_coefficients()[0], 0.7, 0.15);
}

TEST(AutoRegressiveTest, FallsBackToMeanEarly) {
  AutoRegressive ar(3, 32);
  ar.Observe(2.0);
  ar.Observe(4.0);
  EXPECT_DOUBLE_EQ(ar.Forecast(), 3.0);
}

TEST(AutoRegressiveTest, ConstantSeriesForecastsConstant) {
  AutoRegressive ar(2, 16);
  for (int i = 0; i < 16; ++i) ar.Observe(1.5);
  EXPECT_NEAR(ar.Forecast(), 1.5, 1e-9);
}

TEST(AutoRegressiveTest, BeatsMovingAverageOnSinusoid) {
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back(3.0 +
                     std::sin(2.0 * std::numbers::pi * i / 16.0));
  }
  const ForecastMetrics ar = EvaluateOneStep(AutoRegressive(4, 64),
                                             series, 20);
  const ForecastMetrics ma = EvaluateOneStep(MovingAverage(4), series, 20);
  EXPECT_LT(ar.mae, 0.6 * ma.mae);
}

TEST(AutoRegressiveTest, InvalidConfigThrows) {
  EXPECT_THROW(AutoRegressive(0, 32), common::CheckError);
  EXPECT_THROW(AutoRegressive(4, 6), common::CheckError);
}

TEST(EvaluateOneStepTest, CountsAndPerfectForecast) {
  // Constant series: every forecaster is exact after warmup.
  const std::vector<double> series(20, 3.0);
  const ForecastMetrics m =
      EvaluateOneStep(SimpleExponentialSmoothing(0.3), series, 4);
  EXPECT_EQ(m.evaluated, 16u);
  EXPECT_NEAR(m.mae, 0.0, 1e-12);
  EXPECT_NEAR(m.mre, 0.0, 1e-12);
}

TEST(EvaluateOneStepTest, ShortSeriesGivesNothing) {
  const std::vector<double> series = {1.0, 2.0};
  const ForecastMetrics m =
      EvaluateOneStep(MovingAverage(2), series, 3);
  EXPECT_EQ(m.evaluated, 0u);
}

}  // namespace
}  // namespace amf::forecast

#include "adapt/periodic_policy.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace amf::adapt {
namespace {

/// Inner policy that records whether the context it saw read as violated.
class ProbePolicy : public AdaptationPolicy {
 public:
  std::string name() const override { return "probe"; }
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override {
    ++calls;
    if (ctx.failed || ctx.observed_rt > ctx.sla_threshold) {
      ++violated_calls;
      return data::ServiceId{1};
    }
    return std::nullopt;
  }
  int calls = 0;
  int violated_calls = 0;
};

AbstractTask MakeTask() { return AbstractTask{"t", {0, 1}}; }

TaskContext HealthyCtx(const AbstractTask& task) {
  TaskContext ctx;
  ctx.task = &task;
  ctx.user = 0;
  ctx.current_binding = 0;
  ctx.observed_rt = 0.5;
  ctx.sla_threshold = 2.0;
  return ctx;
}

TEST(PeriodicPolicyTest, InvalidPeriodThrows) {
  ProbePolicy inner;
  EXPECT_THROW(PeriodicReselectionPolicy(inner, 0), common::CheckError);
}

TEST(PeriodicPolicyTest, NameCombines) {
  ProbePolicy inner;
  PeriodicReselectionPolicy policy(inner, 4);
  EXPECT_EQ(policy.name(), "periodic(4)+probe");
}

TEST(PeriodicPolicyTest, ForcesReselectionEveryPeriod) {
  ProbePolicy inner;
  PeriodicReselectionPolicy policy(inner, 3);
  const AbstractTask task = MakeTask();
  int rebinds = 0;
  for (int i = 0; i < 9; ++i) {
    if (policy.SelectBinding(HealthyCtx(task))) ++rebinds;
  }
  EXPECT_EQ(inner.calls, 9);
  EXPECT_EQ(inner.violated_calls, 3);  // iterations 3, 6, 9
  EXPECT_EQ(rebinds, 3);
}

TEST(PeriodicPolicyTest, RealViolationsPassThroughBetweenPeriods) {
  ProbePolicy inner;
  PeriodicReselectionPolicy policy(inner, 100);
  const AbstractTask task = MakeTask();
  TaskContext ctx = HealthyCtx(task);
  ctx.observed_rt = 10.0;
  EXPECT_TRUE(policy.SelectBinding(ctx).has_value());
  EXPECT_EQ(inner.violated_calls, 1);
}

TEST(PeriodicPolicyTest, CountersArePerUserTask) {
  ProbePolicy inner;
  PeriodicReselectionPolicy policy(inner, 2);
  const AbstractTask task_a = MakeTask();
  const AbstractTask task_b = MakeTask();
  TaskContext a = HealthyCtx(task_a);
  TaskContext b = HealthyCtx(task_b);
  b.user = 1;
  policy.SelectBinding(a);  // a: count 1
  policy.SelectBinding(b);  // b: count 1
  EXPECT_EQ(inner.violated_calls, 0);
  policy.SelectBinding(a);  // a: count 2 -> forced
  EXPECT_EQ(inner.violated_calls, 1);
  policy.SelectBinding(b);  // b: count 2 -> forced
  EXPECT_EQ(inner.violated_calls, 2);
}

}  // namespace
}  // namespace amf::adapt

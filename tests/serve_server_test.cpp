// End-to-end tests for the epoll serving front-end (serve/server.h):
// every opcode over a real loopback socket, coalescing observable in the
// server-side counters, malformed frames closing the connection (with
// one terminal kError frame when the fixed header was parseable, a
// silent close for unframeable garbage, never UB), the PING wire-marker
// handshake, EINTR immunity under a directed signal storm, the
// slow-reader backpressure ladder's drop rung, and the graceful-shutdown
// contract — coalesced requests are answered and journaled observations
// are flushed before exit.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapt/concurrent_service.h"
#include "common/rng.h"
#include "core/amf_predictor.h"
#include "obs/export.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "stream/wal.h"

namespace amf::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kUsers = 16;
constexpr std::size_t kServices = 32;

std::unique_ptr<adapt::ConcurrentPredictionService> MakeTrainedService() {
  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(2014);
  auto service =
      std::make_unique<adapt::ConcurrentPredictionService>(cfg, 4096);
  for (std::size_t u = 0; u < kUsers; ++u) {
    service->RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service->RegisterService("s" + std::to_string(s));
  }
  common::Rng rng(41);
  double now = 0.0;
  for (std::size_t i = 0; i < kUsers * kServices / 2; ++i) {
    now += 1e-3;
    service->ReportObservation(data::QoSSample{
        .slice = 0,
        .user = static_cast<data::UserId>(rng.Index(kUsers)),
        .service = static_cast<data::ServiceId>(rng.Index(kServices)),
        .value = rng.LogNormal(-1.0, 0.5),
        .timestamp = now});
    if ((i & 255) == 255) service->Tick(now);
  }
  service->TrainToConvergence(now);
  return service;
}

double Counter(const adapt::ConcurrentPredictionService& service,
               const std::string& name) {
  const std::string json = obs::ToJson(service.metrics().Snapshot());
  return ExtractMetricNumber(json, name).value_or(0.0);
}

TEST(ServeServerTest, EveryOpcodeRoundTripsOverLoopback) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  EXPECT_TRUE(client.Ping());

  // PREDICT answers bit-identical to an in-process PredictQoS.
  const auto over_wire = client.Predict(3, 5);
  ASSERT_TRUE(over_wire.has_value());
  const auto in_process = service->PredictQoS(3, 5);
  ASSERT_TRUE(in_process.has_value());
  EXPECT_EQ(*over_wire, *in_process);

  // Unknown entity -> kUnknownEntity -> nullopt from the client.
  EXPECT_FALSE(client.Predict(kUsers + 9, 0).has_value());

  // PREDICT_MANY agrees with PredictQoSMany element-wise.
  const std::vector<data::ServiceId> candidates = {0, 7, 19, kServices + 4};
  const auto many = client.PredictMany(2, candidates);
  ASSERT_TRUE(many.has_value());
  ASSERT_EQ(many->size(), candidates.size());
  std::vector<double> local(candidates.size());
  ASSERT_TRUE(service->PredictQoSMany(2, candidates, local));
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (std::isnan(local[i])) {
      EXPECT_TRUE(std::isnan((*many)[i])) << i;
    } else {
      EXPECT_EQ((*many)[i], local[i]) << i;
    }
  }

  // REPORT_OBS lands in the ring (kOk) and unknown ids still ack kOk —
  // ingest is fire-and-forget; validation happens at the drain.
  const auto st = client.ReportObservation(data::QoSSample{
      .slice = 0, .user = 1, .service = 1, .value = 0.25, .timestamp = 1.0});
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(*st, Status::kOk);

  // METRICS returns a JSON snapshot that includes the serving counters.
  const auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("serve.requests"), std::string::npos);
  EXPECT_GE(ExtractMetricNumber(*metrics, "serve.requests").value_or(0.0),
            1.0);

  server.Shutdown();
  // After shutdown the client sees EOF.
  EXPECT_TRUE(client.WaitForClose(5.0));
}

TEST(ServeServerTest, PipelinedPredictsCoalesceIntoFewerFlushes) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  cfg.coalesce_window_us = 50'000.0;  // generous: one socket burst = batches
  cfg.coalesce_max_batch = 8;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));

  // One write carrying 32 pipelined PREDICTs: the server's read loop
  // ingests them together, so with cap 8 they flush as batches, not as
  // 32 singles.
  constexpr std::uint64_t kCount = 32;
  std::string burst;
  for (std::uint64_t id = 1; id <= kCount; ++id) {
    AppendPredictRequest(burst, id,
                         static_cast<data::UserId>(id % kUsers),
                         static_cast<data::ServiceId>(id % kServices));
  }
  ASSERT_TRUE(client.SendRaw(burst));

  // All 32 responses come back, in order, each matching the solo path.
  std::uint64_t next_id = 1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  std::string rbuf;
  while (next_id <= kCount &&
         std::chrono::steady_clock::now() < deadline) {
    char tmp[4096];
    const ssize_t n = ::recv(client.fd(), tmp, sizeof(tmp), 0);
    if (n <= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    rbuf.append(tmp, static_cast<std::size_t>(n));
    std::size_t off = 0;
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    while (DecodeFrame(std::string_view(rbuf).substr(off), &frame, &consumed,
                       &error) == DecodeResult::kFrame) {
      EXPECT_EQ(frame.header.request_id, next_id);
      EXPECT_EQ(frame.header.status, Status::kOk);
      double value = 0.0;
      ASSERT_TRUE(ParsePredictResponse(frame.payload, &value));
      const auto solo = service->PredictQoS(
          static_cast<data::UserId>(next_id % kUsers),
          static_cast<data::ServiceId>(next_id % kServices));
      ASSERT_TRUE(solo.has_value());
      EXPECT_EQ(value, *solo);
      ++next_id;
      off += consumed;
    }
    rbuf.erase(0, off);
  }
  EXPECT_EQ(next_id, kCount + 1);

  const double coalesced = Counter(*service, "serve.coalesce.requests");
  const double flushes = Counter(*service, "serve.coalesce.flushes");
  EXPECT_EQ(coalesced, static_cast<double>(kCount));
  EXPECT_GE(flushes, 1.0);
  EXPECT_LT(flushes, coalesced);  // ratio > 1: batching actually happened

  server.Shutdown();
}

TEST(ServeServerTest, MalformedFrameClosesConnectionAndCounts) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  struct Case {
    const char* name;
    std::string bytes;
  };
  std::vector<Case> cases;
  {
    // Oversized length prefix.
    std::string wire;
    const std::uint32_t huge = kMaxFrameLen + 1;
    wire.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
    cases.push_back({"oversized-length", wire});
  }
  {
    // Garbage opcode.
    std::string wire;
    const std::uint32_t len = kFrameFixedBytes;
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.push_back('\x7f');
    wire.push_back('\0');
    wire.append(8, '\0');
    cases.push_back({"garbage-opcode", wire});
  }
  {
    // A response opcode sent BY a client (server never accepts these).
    std::string wire;
    AppendPingResponse(wire, 1);
    cases.push_back({"client-sent-response", wire});
  }
  {
    // Payload size contradicting the opcode.
    std::string wire;
    const std::uint32_t len = kFrameFixedBytes + 3;
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.push_back(static_cast<char>(Opcode::kPredict));
    wire.push_back('\0');
    wire.append(8, '\0');
    wire.append(3, 'x');
    cases.push_back({"short-predict-payload", wire});
  }
  {
    // PREDICT_MANY whose count field lies about the payload.
    std::string wire;
    AppendPredictManyRequest(wire, 1, 0,
                             std::vector<data::ServiceId>{1, 2});
    std::uint32_t bogus = 100;
    std::memcpy(wire.data() + 4 + kFrameFixedBytes + 4, &bogus,
                sizeof(bogus));
    cases.push_back({"predict-many-count-lie", wire});
  }

  double expected_errors = Counter(*service, "serve.protocol_errors");
  for (const Case& c : cases) {
    Client client;
    ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()))
        << c.name;
    // Prove the connection works first, so the close we observe is a
    // reaction to the malformed bytes and not a flaky connect.
    ASSERT_TRUE(client.Ping()) << c.name;
    ASSERT_TRUE(client.SendRaw(c.bytes)) << c.name;
    EXPECT_TRUE(client.WaitForClose(5.0)) << c.name;
    expected_errors += 1.0;
    EXPECT_EQ(Counter(*service, "serve.protocol_errors"), expected_errors)
        << c.name;
  }

  // The server survives all of it and still serves fresh connections.
  Client healthy;
  ASSERT_TRUE(healthy.ConnectWithRetry("127.0.0.1", server.port()));
  EXPECT_TRUE(healthy.Ping());
  server.Shutdown();
}

TEST(ServeServerTest, SlowReaderIsDroppedNotBufferedForever) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  // Tiny ladder with a drop rung below one response frame: once the
  // kernel socket buffers stop absorbing, a single ~64KB response
  // overshoots pause AND drop in one append — the connection must die,
  // not sit paused with an ever-full buffer.
  cfg.write_pause_bytes = 4 * 1024;
  cfg.write_drop_bytes = 32 * 1024;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  // Clamp our receive window: an explicit SO_RCVBUF disables the
  // kernel's rcvbuf auto-tuning (which on loopback can absorb tens of
  // MB and let the server's kernel buffers soak up every response
  // without its userspace backlog ever growing).
  const int tiny = 16 * 1024;
  ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                         sizeof(tiny)),
            0);

  // Many PREDICT_MANY requests with large candidate lists, never reading
  // a byte back: ~64KB response frames fill the kernel buffers, then the
  // server's write buffer. SendRaw may legitimately fail partway — the
  // server resetting the connection mid-send IS the drop we're after.
  std::vector<data::ServiceId> candidates(8192);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = static_cast<data::ServiceId>(i % kServices);
  }
  std::string req;
  for (std::uint64_t id = 1; id <= 96; ++id) {
    AppendPredictManyRequest(req, id, 0, candidates);
  }
  (void)client.SendRaw(req);

  // The server must hang up on us (the drop rung), not stall or grow.
  EXPECT_TRUE(client.WaitForClose(10.0));
  EXPECT_GE(Counter(*service, "serve.slow_reader_drops"), 1.0);

  server.Shutdown();
}

TEST(ServeServerTest, ShutdownAnswersCoalescedRequestsBeforeClosing) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  // A window so long it cannot elapse on its own: only the shutdown
  // drain's forced flush can answer these requests.
  cfg.coalesce_window_us = 10e6;
  cfg.coalesce_max_batch = 1024;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  constexpr std::uint64_t kCount = 8;
  std::string burst;
  for (std::uint64_t id = 1; id <= kCount; ++id) {
    AppendPredictRequest(burst, id, 1, static_cast<data::ServiceId>(id));
  }
  ASSERT_TRUE(client.SendRaw(burst));
  // Give the event loop a moment to read the requests into the
  // coalescer before we pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::thread shutdown_thread([&] { server.Shutdown(); });

  // Every queued request is still answered...
  std::uint64_t got = 0;
  std::string rbuf;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool eof = false;
  while (!eof && std::chrono::steady_clock::now() < deadline) {
    char tmp[4096];
    const ssize_t n = ::recv(client.fd(), tmp, sizeof(tmp), 0);
    if (n == 0) {
      eof = true;  // ...and then the server closes cleanly.
      break;
    }
    if (n < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    rbuf.append(tmp, static_cast<std::size_t>(n));
    std::size_t off = 0;
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    while (DecodeFrame(std::string_view(rbuf).substr(off), &frame, &consumed,
                       &error) == DecodeResult::kFrame) {
      EXPECT_EQ(frame.header.opcode, Opcode::kPredict);
      ++got;
      off += consumed;
    }
    rbuf.erase(0, off);
  }
  shutdown_thread.join();
  EXPECT_EQ(got, kCount);
  EXPECT_TRUE(eof);
}

TEST(ServeServerTest, ShutdownFlushesJournaledObservations) {
  const std::string dir =
      ::testing::TempDir() + "/serve_server_test_journal";
  fs::remove_all(dir);

  auto service = MakeTrainedService();
  stream::JournalConfig jc;
  jc.directory = dir;
  jc.fsync_policy = stream::FsyncPolicy::kInterval;
  jc.fsync_interval_ms = 3600 * 1000.0;  // only an explicit flush syncs
  service->EnableJournal(jc);

  ServerConfig cfg;
  cfg.run_trainer = true;  // shutdown's final Tick runs the journal drain
  cfg.train_interval_ms = 5;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  constexpr int kReports = 20;
  for (int i = 0; i < kReports; ++i) {
    const auto st = client.ReportObservation(data::QoSSample{
        .slice = 0,
        .user = static_cast<data::UserId>(i % kUsers),
        .service = static_cast<data::ServiceId>(i % kServices),
        .value = 0.5,
        .timestamp = 100.0 + i});
    ASSERT_TRUE(st.has_value());
    ASSERT_EQ(*st, Status::kOk);
  }
  server.Shutdown();

  // Every acknowledged observation reached the journal segments despite
  // the hour-long fsync interval: the drain's FlushJournal did it.
  const auto read = stream::ReadJournal(dir);
  EXPECT_EQ(read.records.size(), static_cast<std::size_t>(kReports));
  fs::remove_all(dir);
}

TEST(ServeServerTest, PingHandshakeCarriesWireMarker) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  // Client::Ping already refuses a marker mismatch; returning true means
  // the server advertised exactly this build's marker.
  EXPECT_TRUE(client.Ping());

  // Raw check of the byte itself: version nibble + endianness bit.
  std::string wire;
  AppendPingRequest(wire, 424242);
  ASSERT_TRUE(client.SendRaw(wire));
  std::string rbuf;
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    char tmp[256];
    const ssize_t n = ::recv(client.fd(), tmp, sizeof(tmp), 0);
    if (n > 0) rbuf.append(tmp, static_cast<std::size_t>(n));
    if (DecodeFrame(rbuf, &frame, &consumed, &error) == DecodeResult::kFrame) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(frame.header.opcode, Opcode::kPing);
  ASSERT_EQ(frame.header.request_id, 424242u);
  std::uint8_t marker = 0;
  ASSERT_TRUE(ParsePingResponse(frame.payload, &marker));
  EXPECT_EQ(marker, kWireMarker);
  EXPECT_EQ(marker >> 4, kProtocolVersion);
  server.Shutdown();
}

/// Reads until EOF, returning every byte the server sent first.
std::string DrainUntilClose(Client& client) {
  std::string bytes;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    char tmp[4096];
    const ssize_t n = ::recv(client.fd(), tmp, sizeof(tmp), 0);
    if (n > 0) {
      bytes.append(tmp, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return bytes;
}

TEST(ServeServerTest, RejectedRequestGetsErrorFrameBeforeClose) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  // A well-framed PREDICT whose payload size lies: the fixed header is
  // recoverable, so the close must be preceded by one kError frame
  // echoing the rejected request's opcode and id.
  {
    Client client;
    ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
    std::string wire;
    const std::uint32_t len = kFrameFixedBytes + 3;
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.push_back(static_cast<char>(Opcode::kPredict));
    wire.push_back('\0');
    const std::uint64_t id = 777;
    wire.append(reinterpret_cast<const char*>(&id), sizeof(id));
    wire.append(3, 'x');
    ASSERT_TRUE(client.SendRaw(wire));

    const std::string bytes = DrainUntilClose(client);
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeFrame(bytes, &frame, &consumed, &error),
              DecodeResult::kFrame);
    EXPECT_EQ(consumed, bytes.size());  // exactly one terminal frame
    EXPECT_EQ(frame.header.opcode, Opcode::kPredict);
    EXPECT_TRUE(frame.header.is_response);
    EXPECT_EQ(frame.header.status, Status::kError);
    EXPECT_EQ(frame.header.request_id, 777u);
    EXPECT_TRUE(frame.payload.empty());
  }

  // Unframeable garbage (unknown opcode) still closes silently: a peer
  // that cannot frame bytes cannot be trusted to parse a frame.
  {
    Client client;
    ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
    std::string wire;
    const std::uint32_t len = kFrameFixedBytes;
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.push_back('\x7f');
    wire.push_back('\0');
    wire.append(8, '\0');
    ASSERT_TRUE(client.SendRaw(wire));
    EXPECT_TRUE(DrainUntilClose(client).empty());
  }
  server.Shutdown();
}

void SigUsr1NoOp(int) {}  // handler exists only to interrupt syscalls

TEST(ServeServerTest, SignalStormNeverClosesConnectionsOrChangesAnswers) {
  // Install a SIGUSR1 handler WITHOUT SA_RESTART, so every signal that
  // lands mid-syscall makes recv/send/epoll_wait return EINTR instead of
  // restarting transparently — exactly the condition that used to be
  // misread as a dead socket.
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = SigUsr1NoOp;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server server(service.get(), cfg);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client;
  ASSERT_TRUE(client.ConnectWithRetry("127.0.0.1", server.port()));
  ASSERT_TRUE(client.Ping());
  const double closed_before = Counter(*service, "serve.closed");
  const double errors_before = Counter(*service, "serve.protocol_errors");

  // Direct the storm at the event-loop thread specifically — that is the
  // thread inside recv/send/epoll_wait.
  std::atomic<bool> stop{false};
  std::thread storm([&server, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ::pthread_kill(server.loop_native_handle(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  // Pipelined PREDICT load under the storm; every answer must still be
  // bit-identical to the in-process control.
  constexpr std::uint64_t kPerRound = 32;
  for (int round = 0; round < 30; ++round) {
    std::string burst;
    for (std::uint64_t id = 1; id <= kPerRound; ++id) {
      AppendPredictRequest(burst, id,
                           static_cast<data::UserId>(id % kUsers),
                           static_cast<data::ServiceId>(id % kServices));
    }
    ASSERT_TRUE(client.SendRaw(burst));
    std::uint64_t next_id = 1;
    std::string rbuf;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (next_id <= kPerRound &&
           std::chrono::steady_clock::now() < deadline) {
      char tmp[4096];
      const ssize_t n = ::recv(client.fd(), tmp, sizeof(tmp), 0);
      if (n <= 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      rbuf.append(tmp, static_cast<std::size_t>(n));
      std::size_t off = 0;
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      while (DecodeFrame(std::string_view(rbuf).substr(off), &frame,
                         &consumed, &error) == DecodeResult::kFrame) {
        EXPECT_EQ(frame.header.request_id, next_id);
        EXPECT_EQ(frame.header.status, Status::kOk);
        double value = 0.0;
        ASSERT_TRUE(ParsePredictResponse(frame.payload, &value));
        const auto solo = service->PredictQoS(
            static_cast<data::UserId>(next_id % kUsers),
            static_cast<data::ServiceId>(next_id % kServices));
        ASSERT_TRUE(solo.has_value());
        EXPECT_EQ(value, *solo);  // bitwise, storm or no storm
        ++next_id;
        off += consumed;
      }
      rbuf.erase(0, off);
    }
    ASSERT_EQ(next_id, kPerRound + 1) << "round " << round;
  }

  stop.store(true, std::memory_order_relaxed);
  storm.join();

  // Zero connections were torn down and nothing was misread as a
  // protocol error: EINTR was retried everywhere, not treated as death.
  EXPECT_EQ(Counter(*service, "serve.closed"), closed_before);
  EXPECT_EQ(Counter(*service, "serve.protocol_errors"), errors_before);
  EXPECT_TRUE(client.Ping());  // the connection is still fully usable

  server.Shutdown();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(ServeServerTest, StartFailsCleanlyWhenPortIsTaken) {
  const auto service = MakeTrainedService();
  ServerConfig cfg;
  cfg.run_trainer = false;
  Server first(service.get(), cfg);
  ASSERT_TRUE(first.Start()) << first.last_error();

  ServerConfig clash = cfg;
  clash.port = first.port();
  Server second(service.get(), clash);
  EXPECT_FALSE(second.Start());
  EXPECT_FALSE(second.last_error().empty());
  first.Shutdown();
}

}  // namespace
}  // namespace amf::serve

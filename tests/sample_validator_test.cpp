#include "core/sample_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace amf::core {
namespace {

data::QoSSample S(data::UserId u, data::ServiceId s, double value,
                  double timestamp) {
  return data::QoSSample{
      .slice = 0, .user = u, .service = s, .value = value,
      .timestamp = timestamp};
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SampleValidatorTest, AcceptsCleanSample) {
  SampleValidator v;
  EXPECT_EQ(v.Validate(S(0, 0, 1.5, 10.0), 10.0), SampleVerdict::kAccept);
  EXPECT_EQ(v.stats().accepted, 1u);
  EXPECT_EQ(v.stats().rejected(), 0u);
}

TEST(SampleValidatorTest, RejectsNonFiniteValues) {
  SampleValidator v;
  EXPECT_EQ(v.Validate(S(0, 0, kNan, 1.0), 1.0), SampleVerdict::kNonFinite);
  EXPECT_EQ(v.Validate(S(0, 1, kInf, 1.0), 1.0), SampleVerdict::kNonFinite);
  EXPECT_EQ(v.Validate(S(0, 2, -kInf, 1.0), 1.0), SampleVerdict::kNonFinite);
  EXPECT_EQ(v.stats().rejected_nonfinite, 3u);
  EXPECT_EQ(v.stats().accepted, 0u);
}

TEST(SampleValidatorTest, RejectsNonPositiveValues) {
  SampleValidator v;
  EXPECT_EQ(v.Validate(S(0, 0, 0.0, 1.0), 1.0), SampleVerdict::kNonPositive);
  EXPECT_EQ(v.Validate(S(0, 0, -2.5, 1.0), 1.0),
            SampleVerdict::kNonPositive);
  EXPECT_EQ(v.stats().rejected_nonpositive, 2u);
}

TEST(SampleValidatorTest, NonPositiveGateCanBeDisabled) {
  SampleValidatorConfig cfg;
  cfg.reject_nonpositive = false;
  SampleValidator v(cfg);
  EXPECT_EQ(v.Validate(S(0, 0, 0.0, 1.0), 1.0), SampleVerdict::kAccept);
}

TEST(SampleValidatorTest, RejectsValuesBeyondMax) {
  SampleValidatorConfig cfg;
  cfg.max_value = 100.0;
  SampleValidator v(cfg);
  EXPECT_EQ(v.Validate(S(0, 0, 100.5, 1.0), 1.0),
            SampleVerdict::kOutOfRange);
  EXPECT_EQ(v.Validate(S(0, 0, 99.0, 1.0), 1.0), SampleVerdict::kAccept);
  EXPECT_EQ(v.stats().rejected_out_of_range, 1u);
}

TEST(SampleValidatorTest, RejectsGarbageTimestampsAlways) {
  SampleValidator v;  // max_future_seconds disabled by default
  EXPECT_EQ(v.Validate(S(0, 0, 1.0, kNan), 0.0),
            SampleVerdict::kBadTimestamp);
  EXPECT_EQ(v.Validate(S(0, 0, 1.0, -5.0), 0.0),
            SampleVerdict::kBadTimestamp);
  EXPECT_EQ(v.Validate(S(0, 0, 1.0, kInf), 0.0),
            SampleVerdict::kBadTimestamp);
  EXPECT_EQ(v.stats().rejected_bad_timestamp, 3u);
}

TEST(SampleValidatorTest, FarFutureGateIsOptIn) {
  // Disabled by default: simulations drive the clock from sample stamps.
  SampleValidator lax;
  EXPECT_EQ(lax.Validate(S(0, 0, 1.0, 1e6), 0.0), SampleVerdict::kAccept);

  SampleValidatorConfig cfg;
  cfg.max_future_seconds = 60.0;
  SampleValidator strict(cfg);
  EXPECT_EQ(strict.Validate(S(0, 0, 1.0, 1e6), 0.0),
            SampleVerdict::kBadTimestamp);
  EXPECT_EQ(strict.Validate(S(0, 0, 1.0, 30.0), 0.0),
            SampleVerdict::kAccept);
}

TEST(SampleValidatorTest, RejectsDuplicateAndStaleDeliveries) {
  SampleValidator v;
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 10.0), 10.0), SampleVerdict::kAccept);
  // Same (user, service) pair at the same stamp: re-delivery.
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 10.0), 10.0), SampleVerdict::kDuplicate);
  // Older stamp than the last accepted: stale retransmission.
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 5.0), 10.0), SampleVerdict::kDuplicate);
  // A different pair at the same stamp is fine.
  EXPECT_EQ(v.Validate(S(1, 3, 1.0, 10.0), 10.0), SampleVerdict::kAccept);
  // Fresh stamp for the original pair is fine.
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 11.0), 11.0), SampleVerdict::kAccept);
  EXPECT_EQ(v.stats().rejected_duplicate, 2u);
}

TEST(SampleValidatorTest, DuplicateGateCanBeDisabled) {
  SampleValidatorConfig cfg;
  cfg.reject_duplicates = false;
  SampleValidator v(cfg);
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 10.0), 10.0), SampleVerdict::kAccept);
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 10.0), 10.0), SampleVerdict::kAccept);
}

TEST(SampleValidatorTest, QuarantinesOutliersAfterGateArms) {
  SampleValidatorConfig cfg;
  cfg.outlier_min_samples = 8;
  cfg.outlier_mad_k = 6.0;
  SampleValidator v(cfg);
  // Build history on one service from several users (fresh stamps).
  double t = 1.0;
  for (int i = 0; i < 8; ++i) {
    const double value = 1.0 + 0.05 * (i % 3);
    EXPECT_EQ(v.Validate(S(static_cast<data::UserId>(i), 7, value, t), t),
              SampleVerdict::kAccept);
    t += 1.0;
  }
  EXPECT_TRUE(std::isfinite(v.ServiceMedian(7)));
  // A wild spike is quarantined, not accepted.
  EXPECT_EQ(v.Validate(S(0, 7, 500.0, t), t), SampleVerdict::kOutlier);
  EXPECT_EQ(v.stats().quarantined_outlier, 1u);
  ASSERT_EQ(v.quarantine().size(), 1u);
  EXPECT_DOUBLE_EQ(v.quarantine().back().value, 500.0);
  // An in-band value still gets through.
  EXPECT_EQ(v.Validate(S(1, 7, 1.02, t + 1.0), t + 1.0),
            SampleVerdict::kAccept);
}

TEST(SampleValidatorTest, OutlierGateWaitsForMinSamples) {
  SampleValidatorConfig cfg;
  cfg.outlier_min_samples = 8;
  SampleValidator v(cfg);
  // Only 3 accepted values: the gate is not armed, a spike passes.
  for (int i = 0; i < 3; ++i) {
    v.Validate(S(static_cast<data::UserId>(i), 0, 1.0, 1.0 + i), 1.0 + i);
  }
  EXPECT_EQ(v.Validate(S(9, 0, 500.0, 10.0), 10.0), SampleVerdict::kAccept);
}

TEST(SampleValidatorTest, QuarantineBufferIsBounded) {
  SampleValidatorConfig cfg;
  cfg.outlier_min_samples = 4;
  cfg.quarantine_capacity = 3;
  SampleValidator v(cfg);
  double t = 1.0;
  for (int i = 0; i < 4; ++i) {
    v.Validate(S(static_cast<data::UserId>(i), 0, 1.0, t), t);
    t += 1.0;
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(v.Validate(S(static_cast<data::UserId>(i), 0, 1000.0 + i, t), t),
              SampleVerdict::kOutlier);
    t += 1.0;
  }
  EXPECT_EQ(v.quarantine().size(), 3u);
  // Oldest evicted: the newest outliers remain.
  EXPECT_DOUBLE_EQ(v.quarantine().back().value, 1009.0);
}

TEST(SampleValidatorTest, ServiceStatsUnseenServiceIsNan) {
  SampleValidator v;
  EXPECT_TRUE(std::isnan(v.ServiceMedian(42)));
  EXPECT_TRUE(std::isnan(v.ServiceMad(42)));
}

TEST(SampleValidatorTest, ResetDropsStateKeepsCounters) {
  SampleValidator v;
  v.Validate(S(1, 2, 1.0, 10.0), 10.0);
  v.Validate(S(1, 2, 1.0, 10.0), 10.0);  // duplicate
  ASSERT_EQ(v.stats().rejected_duplicate, 1u);
  v.Reset();
  // History gone: the same stamp is no longer a duplicate.
  EXPECT_EQ(v.Validate(S(1, 2, 1.0, 10.0), 10.0), SampleVerdict::kAccept);
  // Counters survived.
  EXPECT_EQ(v.stats().rejected_duplicate, 1u);
  EXPECT_EQ(v.stats().accepted, 2u);
}

TEST(SampleValidatorTest, VerdictNamesAreStable) {
  EXPECT_STREQ(ToString(SampleVerdict::kAccept), "accept");
  EXPECT_STREQ(ToString(SampleVerdict::kOutlier), "outlier");
}

TEST(PipelineStatsTest, AggregatesAndFormats) {
  PipelineStats s;
  s.accepted = 5;
  s.rejected_nonfinite = 1;
  s.rejected_duplicate = 2;
  s.quarantined_outlier = 3;
  EXPECT_EQ(s.rejected(), 3u);
  EXPECT_EQ(s.seen(), 11u);
  EXPECT_NE(s.ToString().find("accepted=5"), std::string::npos);
}

}  // namespace
}  // namespace amf::core

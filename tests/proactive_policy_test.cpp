#include "adapt/proactive_policy.h"

#include <gtest/gtest.h>

#include "forecast/exponential_smoothing.h"
#include "forecast/moving_average.h"

namespace amf::adapt {
namespace {

/// Inner policy that records the context it was offered and rebinds to a
/// fixed target on violation.
class RecordingPolicy : public AdaptationPolicy {
 public:
  std::string name() const override { return "recording"; }
  std::optional<data::ServiceId> SelectBinding(
      const TaskContext& ctx) override {
    last_observed_rt = ctx.observed_rt;
    ++calls;
    if (ctx.failed || ctx.observed_rt > ctx.sla_threshold) {
      return data::ServiceId{99};
    }
    return std::nullopt;
  }
  double last_observed_rt = 0.0;
  int calls = 0;
};

AbstractTask MakeTask() { return AbstractTask{"t", {0, 1, 99}}; }

TaskContext Ctx(const AbstractTask& task, double rt) {
  TaskContext ctx;
  ctx.task = &task;
  ctx.user = 0;
  ctx.current_binding = 0;
  ctx.observed_rt = rt;
  ctx.sla_threshold = 2.0;
  return ctx;
}

TEST(ProactivePolicyTest, NameCombinesParts) {
  RecordingPolicy inner;
  forecast::MovingAverage ma(2);
  ProactivePolicy policy(inner, ma);
  EXPECT_EQ(policy.name(), "proactive[MA(2)]+recording");
}

TEST(ProactivePolicyTest, PassesThroughWhenHealthy) {
  RecordingPolicy inner;
  forecast::SimpleExponentialSmoothing ses(0.5);
  ProactivePolicy policy(inner, ses);
  const AbstractTask task = MakeTask();
  EXPECT_FALSE(policy.SelectBinding(Ctx(task, 1.0)).has_value());
  EXPECT_EQ(inner.calls, 1);
}

TEST(ProactivePolicyTest, ForecastTriggersBeforeObservedViolation) {
  // Ramp up toward the SLA: with a trend-free forecaster (MA over recent
  // history near the SLA) the max(observed, forecast) crosses only when
  // observations do; use SES with alpha 1 -> forecast == last value.
  // To get a *proactive* trigger we feed a spike, then a healthy value:
  // the forecast (EWMA) is still above SLA even though the observation
  // is fine.
  RecordingPolicy inner;
  forecast::SimpleExponentialSmoothing ses(0.9);
  ProactivePolicy policy(inner, ses);
  const AbstractTask task = MakeTask();
  EXPECT_TRUE(policy.SelectBinding(Ctx(task, 10.0)).has_value());  // spike
  const auto pick = policy.SelectBinding(Ctx(task, 1.5));  // healthy obs
  // Forecast = 0.9*1.5 + 0.1*10 = 2.35 > SLA -> still triggers.
  EXPECT_TRUE(pick.has_value());
  EXPECT_DOUBLE_EQ(inner.last_observed_rt, 0.9 * 1.5 + 0.1 * 10.0);
}

TEST(ProactivePolicyTest, SeparateForecastersPerBinding) {
  RecordingPolicy inner;
  forecast::MovingAverage ma(4);
  ProactivePolicy policy(inner, ma);
  const AbstractTask task = MakeTask();

  TaskContext ctx0 = Ctx(task, 1.0);
  ctx0.current_binding = 0;
  policy.SelectBinding(ctx0);
  TaskContext ctx1 = Ctx(task, 3.0);
  ctx1.current_binding = 1;
  policy.SelectBinding(ctx1);

  ASSERT_TRUE(policy.ForecastFor(0, 0).has_value());
  ASSERT_TRUE(policy.ForecastFor(0, 1).has_value());
  EXPECT_DOUBLE_EQ(*policy.ForecastFor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(*policy.ForecastFor(0, 1), 3.0);
  EXPECT_FALSE(policy.ForecastFor(1, 0).has_value());
}

TEST(ProactivePolicyTest, ObservedViolationStillTriggers) {
  RecordingPolicy inner;
  forecast::MovingAverage ma(8);
  ProactivePolicy policy(inner, ma);
  const AbstractTask task = MakeTask();
  // Long healthy history, then a hard violation: forecast is low but the
  // observation itself must trigger.
  for (int i = 0; i < 8; ++i) policy.SelectBinding(Ctx(task, 0.5));
  const auto pick = policy.SelectBinding(Ctx(task, 9.0));
  EXPECT_TRUE(pick.has_value());
}

}  // namespace
}  // namespace amf::adapt

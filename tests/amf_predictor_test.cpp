#include "core/amf_predictor.h"

#include <gtest/gtest.h>

#include "cf/pmf.h"
#include "common/check.h"
#include "tests/test_util.h"

namespace amf::core {
namespace {

TEST(AmfPredictorTest, Names) {
  EXPECT_EQ(AmfPredictor(MakeResponseTimeConfig()).name(), "AMF");
  AmfConfig linear = MakeResponseTimeConfig();
  linear.transform.alpha = 1.0;
  EXPECT_EQ(AmfPredictor(linear).name(), "AMF(a=1)");
  AmfConfig fixed = MakeResponseTimeConfig();
  fixed.adaptive_weights = false;
  EXPECT_EQ(AmfPredictor(fixed).name(), "AMF(fixed-w)");
}

TEST(AmfPredictorTest, EmptyTrainingSetThrows) {
  AmfPredictor amf;
  data::SparseMatrix empty(2, 2);
  EXPECT_THROW(amf.Fit(empty), common::CheckError);
}

TEST(AmfPredictorTest, FitCoversWholeSliceShape) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  const data::TrainTestSplit split = testutil::Split(slice, 0.2);
  AmfPredictor amf(MakeResponseTimeConfig(1));
  amf.Fit(split.train);
  EXPECT_EQ(amf.model().num_users(), 20u);
  EXPECT_EQ(amf.model().num_services(), 50u);
  // Every held-out pair is predictable (even cold entities).
  for (const auto& s : split.test) {
    EXPECT_TRUE(std::isfinite(amf.Predict(s.user, s.service)));
  }
  EXPECT_GT(amf.epochs_run(), 0u);
}

TEST(AmfPredictorTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfPredictor amf(MakeResponseTimeConfig(1));
  amf.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(amf, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mre, baseline.mre);
  EXPECT_GT(m.count, 0u);
}

TEST(AmfPredictorTest, BetterMreThanPmf) {
  // The paper's headline claim (Table I): AMF beats PMF on relative error.
  const linalg::Matrix slice = testutil::SmallRtSlice(40, 150, 99);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfPredictor amf(MakeResponseTimeConfig(1));
  amf.Fit(split.train);
  cf::Pmf pmf;
  pmf.Fit(split.train);
  const eval::Metrics amf_m = eval::EvaluatePredictor(amf, split.test);
  const eval::Metrics pmf_m = eval::EvaluatePredictor(pmf, split.test);
  EXPECT_LT(amf_m.mre, pmf_m.mre);
  EXPECT_LT(amf_m.npre, pmf_m.npre);
}

TEST(AmfPredictorTest, DeterministicInSeed) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  AmfPredictor a(MakeResponseTimeConfig(5)), b(MakeResponseTimeConfig(5));
  a.Fit(split.train);
  b.Fit(split.train);
  for (std::size_t i = 0; i < 20 && i < split.test.size(); ++i) {
    const auto& s = split.test[i];
    EXPECT_DOUBLE_EQ(a.Predict(s.user, s.service),
                     b.Predict(s.user, s.service));
  }
}

TEST(AmfPredictorTest, PredictionsWithinValueRange) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  AmfPredictor amf(MakeResponseTimeConfig(3));
  amf.Fit(split.train);
  for (const auto& s : split.test) {
    const double p = amf.Predict(s.user, s.service);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 20.0 + 1e-9);
  }
}

TEST(AmfPredictorTest, WarmStartContinuesLearning) {
  // Fit on slice data, then feed one pair's true value online -- the
  // prediction for that pair must move toward it without a refit.
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  AmfPredictor amf(MakeResponseTimeConfig(4));
  amf.Fit(split.train);
  ASSERT_FALSE(split.test.empty());
  const auto& target = split.test.front();
  const double before =
      std::abs(amf.Predict(target.user, target.service) - target.value);
  for (int i = 0; i < 50; ++i) {
    amf.model().OnlineUpdate(target.user, target.service, target.value);
  }
  const double after =
      std::abs(amf.Predict(target.user, target.service) - target.value);
  EXPECT_LT(after, before + 1e-12);
  EXPECT_LT(after, 0.25 * target.value + 0.05);
}

}  // namespace
}  // namespace amf::core

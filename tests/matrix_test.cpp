#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace amf::linalg {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FALSE(m.empty());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 1.5);
    }
  }
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, ElementAccess) {
  Matrix m(2, 2);
  m(0, 1) = 3.0;
  m(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowSpanIsContiguousView) {
  Matrix m(3, 4);
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 4u);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(MatrixTest, ResizeDiscardsContents) {
  Matrix m(2, 2, 5.0);
  m.Resize(3, 1, -1.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m(2, 0), -1.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3);
  int v = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = ++v;
  }
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
    }
  }
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  std::copy(std::begin(bv), std::end(bv), b.data().begin());
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_ANY_THROW(a.Multiply(b));
}

TEST(MatrixTest, GramEqualsTransposeTimesSelf) {
  Matrix a(3, 2);
  double av[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(av), std::end(av), a.data().begin());
  const Matrix g = a.Gram();
  const Matrix expected = a.Transposed().Multiply(a);
  ASSERT_EQ(g.rows(), 2u);
  ASSERT_EQ(g.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, FiniteHelpers) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = std::numeric_limits<double>::quiet_NaN();
  m(1, 0) = 3.0;
  m(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(m.CountFinite(), 2u);
  EXPECT_DOUBLE_EQ(m.MeanFinite(), 2.0);
}

TEST(MatrixTest, Equality) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  EXPECT_EQ(a, b);
  b(1, 1) = 2.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace amf::linalg

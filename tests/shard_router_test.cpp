// ShardRouter (adapt/shard_router.h): the user -> shard mapping is a
// FROZEN contract — per-shard checkpoints and WAL directories are laid
// out by it, so these golden pins must never change without a hash
// version bump plus a migration story. The golden values were computed
// independently (reference SplitMix64 finalizer in python) and are
// asserted verbatim; an "innocent" constant tweak in Mix() fails here
// before it can strand durable state on the wrong shard.
#include "adapt/shard_router.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/check.h"

namespace amf::adapt {
namespace {

TEST(ShardRouterTest, HashVersionIsFrozen) {
  // Bumping this requires migrating every existing shard directory; the
  // manifest records it and Recover() refuses a mismatch.
  EXPECT_EQ(ShardRouter::kHashVersion, 1u);
}

TEST(ShardRouterTest, GoldenMixValues) {
  // Reference SplitMix64 finalizer (Stafford variant 13) outputs.
  EXPECT_EQ(ShardRouter::Mix(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(ShardRouter::Mix(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(ShardRouter::Mix(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(ShardRouter::Mix(3), 0x1d0b14e4db018fedULL);
  EXPECT_EQ(ShardRouter::Mix(7), 0x63cbe1e459320dd7ULL);
  EXPECT_EQ(ShardRouter::Mix(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(ShardRouter::Mix(1000), 0x3c1eba8b4dccc148ULL);
  EXPECT_EQ(ShardRouter::Mix(123456), 0x39e65b817d6592e9ULL);
}

TEST(ShardRouterTest, GoldenUserToShardPins) {
  const ShardRouter r2(2);
  const ShardRouter r4(4);
  const ShardRouter r8(8);
  // (user, shard@2, shard@4, shard@8) — derived from the golden hashes.
  struct Pin {
    data::UserId user;
    std::size_t s2, s4, s8;
  };
  const std::array<Pin, 8> pins = {{
      {0, 1, 3, 7},
      {1, 1, 1, 1},
      {2, 0, 2, 6},
      {3, 1, 1, 5},
      {7, 1, 3, 7},
      {42, 1, 1, 5},
      {1000, 0, 0, 0},
      {123456, 1, 1, 1},
  }};
  for (const Pin& p : pins) {
    EXPECT_EQ(r2.ShardOf(p.user), p.s2) << "user " << p.user;
    EXPECT_EQ(r4.ShardOf(p.user), p.s4) << "user " << p.user;
    EXPECT_EQ(r8.ShardOf(p.user), p.s8) << "user " << p.user;
  }
}

TEST(ShardRouterTest, SingleShardAlwaysZero) {
  const ShardRouter r(1);
  for (data::UserId u = 0; u < 1000; ++u) EXPECT_EQ(r.ShardOf(u), 0u);
}

TEST(ShardRouterTest, DenseIdsSpreadEvenly) {
  // Dense registration-order ids must not correlate with shard index —
  // that is the whole point of mixing before the modulo. Expect every
  // shard within 20% of the uniform share over 10k consecutive users.
  const std::size_t kShards = 4;
  const std::size_t kUsers = 10000;
  const ShardRouter r(kShards);
  std::vector<std::size_t> counts(kShards, 0);
  for (data::UserId u = 0; u < kUsers; ++u) ++counts[r.ShardOf(u)];
  const double expect = static_cast<double>(kUsers) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], expect * 0.8) << "shard " << s;
    EXPECT_LT(counts[s], expect * 1.2) << "shard " << s;
  }
}

TEST(ShardRouterTest, ZeroShardsRejected) {
  EXPECT_THROW(ShardRouter(0), common::CheckError);
}

}  // namespace
}  // namespace amf::adapt

// Fault-tolerance coverage: FaultInjector units, retry-with-backoff,
// trainer watchdog, the degradation ladder, and the end-to-end chaos
// integration test (drops + corruption + mid-run crash/restore) that the
// robustness work is accepted against.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "adapt/environment.h"
#include "adapt/fault_injector.h"
#include "adapt/prediction_service.h"
#include "common/retry.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/trainer_watchdog.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

namespace amf {
namespace {

namespace fs = std::filesystem;

data::SyntheticConfig SmallSynthetic() {
  data::SyntheticConfig cfg;
  cfg.users = 16;
  cfg.services = 40;
  cfg.slices = 4;
  cfg.seed = 99;
  return cfg;
}

// --- FaultInjector -------------------------------------------------------

TEST(FaultInjectorTest, DeterministicInSeed) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.drop_prob = 0.3;
  cfg.spike_prob = 0.2;
  adapt::FaultInjector a(env, cfg);
  adapt::FaultInjector b(env, cfg);
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.Invoke(i % 16, i % 40, 10.0);
    const auto rb = b.Invoke(i % 16, i % 40, 10.0);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_DOUBLE_EQ(ra->response_time, rb->response_time);
    }
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
}

TEST(FaultInjectorTest, DropProbabilityOneDropsEverything) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.drop_prob = 1.0;
  adapt::FaultInjector injector(env, cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(injector.Invoke(0, 0, 1.0).has_value());
  }
  EXPECT_EQ(injector.stats().drops, 50u);
  EXPECT_TRUE(injector.Observe(0, 0, 1.0).empty());
}

TEST(FaultInjectorTest, SpikeMultipliesResponseTime) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.spike_prob = 1.0;
  cfg.spike_multiplier = 10.0;
  adapt::FaultInjector injector(env, cfg);
  const auto result = injector.Invoke(2, 3, 5.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->response_time,
                   10.0 * env.Invoke(2, 3, 5.0).response_time);
}

TEST(FaultInjectorTest, CorruptionCyclesThroughEveryMode) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.corrupt_prob = 1.0;
  adapt::FaultInjector injector(env, cfg);
  const data::QoSSample clean{0, 1, 2, 1.5, 10.0};
  bool saw_nan = false, saw_inf = false, saw_nonpositive = false,
       saw_huge = false;
  for (int i = 0; i < 10; ++i) {
    for (const data::QoSSample& s : injector.Deliver(clean)) {
      if (std::isnan(s.value)) saw_nan = true;
      if (std::isinf(s.value)) saw_inf = true;
      if (std::isfinite(s.value) && s.value <= 0.0) saw_nonpositive = true;
      if (std::isfinite(s.value) && s.value > 1e9) saw_huge = true;
    }
  }
  EXPECT_TRUE(saw_nan);
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_nonpositive);
  EXPECT_TRUE(saw_huge);
  EXPECT_EQ(injector.stats().corruptions, 10u);
}

TEST(FaultInjectorTest, DuplicateDeliveryReturnsTwoSamples) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.duplicate_prob = 1.0;
  adapt::FaultInjector injector(env, cfg);
  const std::vector<data::QoSSample> out =
      injector.Deliver({0, 1, 2, 1.5, 10.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], out[1]);
}

TEST(FaultInjectorTest, ChurnReattributesToPhantomIds) {
  const data::SyntheticQoSDataset dataset(SmallSynthetic());
  const adapt::Environment env(dataset);
  adapt::FaultInjectorConfig cfg;
  cfg.churn_prob = 1.0;
  cfg.churn_id_offset = 5000;
  adapt::FaultInjector injector(env, cfg);
  const std::vector<data::QoSSample> out =
      injector.Deliver({0, 1, 2, 1.5, 10.0});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].user >= 5000 || out[0].service >= 5000);
}

// --- Retry with backoff --------------------------------------------------

TEST(RetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::vector<double> slept;
  std::size_t attempts = 0;
  const std::optional<int> result = common::RetryWithBackoff(
      [&]() -> std::optional<int> {
        if (++calls < 3) return std::nullopt;
        return 42;
      },
      common::BackoffConfig{.max_attempts = 5,
                            .initial_delay_seconds = 0.01,
                            .multiplier = 2.0,
                            .max_delay_seconds = 1.0},
      [&](double s) { slept.push_back(s); }, &attempts);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(attempts, 3u);
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_DOUBLE_EQ(slept[0], 0.01);
  EXPECT_DOUBLE_EQ(slept[1], 0.02);  // exponential growth
}

TEST(RetryTest, GivesUpAfterMaxAttemptsAndCapsDelay) {
  std::vector<double> slept;
  std::size_t attempts = 0;
  const std::optional<int> result = common::RetryWithBackoff(
      []() -> std::optional<int> { return std::nullopt; },
      common::BackoffConfig{.max_attempts = 4,
                            .initial_delay_seconds = 0.5,
                            .multiplier = 10.0,
                            .max_delay_seconds = 1.0},
      [&](double s) { slept.push_back(s); }, &attempts);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(attempts, 4u);
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[1], 1.0);  // capped
  EXPECT_DOUBLE_EQ(slept[2], 1.0);
}

// --- Trainer watchdog ----------------------------------------------------

template <typename Pred>
bool WaitFor(Pred pred, double timeout_seconds = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(TrainerWatchdogTest, RestartsWorkerAfterExceptions) {
  std::atomic<int> calls{0};
  core::WatchdogConfig cfg;
  cfg.check_interval_seconds = 0.005;
  cfg.stall_timeout_seconds = 30.0;  // exceptions only, no stall detection
  core::TrainerWatchdog dog(
      [&](const std::atomic<bool>&) {
        const int n = ++calls;
        if (n <= 2) throw std::runtime_error("transient step failure");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      cfg);
  dog.Start();
  EXPECT_TRUE(WaitFor([&] { return dog.heartbeats() >= 5; }));
  dog.Stop();
  EXPECT_EQ(dog.exceptions(), 2u);
  EXPECT_GE(dog.restarts(), 2u);
  EXPECT_FALSE(dog.gave_up());
  EXPECT_NE(dog.last_error().find("transient step failure"),
            std::string::npos);
}

TEST(TrainerWatchdogTest, GivesUpWhenWorkerKeepsDying) {
  core::WatchdogConfig cfg;
  cfg.check_interval_seconds = 0.005;
  cfg.stall_timeout_seconds = 30.0;
  cfg.max_restarts = 2;
  core::TrainerWatchdog dog(
      [](const std::atomic<bool>&) { throw std::runtime_error("always"); },
      cfg);
  dog.Start();
  EXPECT_TRUE(WaitFor([&] { return dog.gave_up(); }));
  dog.Stop();
  EXPECT_EQ(dog.restarts(), 2u);
  EXPECT_GE(dog.exceptions(), 3u);  // initial worker + both relaunches died
}

TEST(TrainerWatchdogTest, CancelsAndRestartsStalledWorker) {
  std::atomic<int> calls{0};
  std::atomic<bool> saw_cancel{false};
  core::WatchdogConfig cfg;
  cfg.check_interval_seconds = 0.005;
  cfg.stall_timeout_seconds = 0.05;
  core::TrainerWatchdog dog(
      [&](const std::atomic<bool>& cancel) {
        if (++calls == 1) {
          // Wedge until the watchdog raises the cancel token.
          while (!cancel.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          saw_cancel.store(true, std::memory_order_release);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      cfg);
  dog.Start();
  EXPECT_TRUE(WaitFor([&] { return dog.heartbeats() >= 3; }));
  dog.Stop();
  EXPECT_TRUE(saw_cancel.load());
  EXPECT_GE(dog.stalls(), 1u);
}

// --- Degradation ladder --------------------------------------------------

adapt::PredictionServiceConfig ServiceConfig() {
  adapt::PredictionServiceConfig cfg;
  cfg.model = core::MakeResponseTimeConfig(7);
  return cfg;
}

TEST(DegradationLadderTest, UnknownEverythingIsUnavailable) {
  adapt::QoSPredictionService service(ServiceConfig());
  const auto p = service.PredictResilient(0, 0);
  EXPECT_EQ(p.source,
            adapt::QoSPredictionService::PredictionSource::kUnavailable);
  EXPECT_TRUE(std::isnan(p.value));
  EXPECT_EQ(service.degradation_stats().unavailable, 1u);
}

TEST(DegradationLadderTest, UnconvergedEntityFallsBackToServiceMean) {
  adapt::PredictionServiceConfig cfg = ServiceConfig();
  cfg.degradation.max_entity_error = 0.0;  // never trust the model
  adapt::QoSPredictionService service(cfg);
  service.RegisterUser("u0");
  service.RegisterService("s0");
  service.ReportObservation({0, 0, 0, 2.0, 1.0});
  service.ReportObservation({0, 0, 0, 4.0, 2.0});
  service.Tick(2.0);
  const auto p = service.PredictResilient(0, 0);
  EXPECT_EQ(p.source,
            adapt::QoSPredictionService::PredictionSource::kServiceMean);
  EXPECT_DOUBLE_EQ(p.value, 3.0);
}

TEST(DegradationLadderTest, LastKnownGoodWhenNoServiceStats) {
  adapt::PredictionServiceConfig cfg = ServiceConfig();
  cfg.degradation.max_entity_error = 0.0;
  adapt::QoSPredictionService service(cfg);
  service.RegisterUser("u0");
  service.RegisterService("s0");
  // Bypass ReportObservation so no running mean exists; the stored sample
  // (e.g. restored from a checkpoint) is the only knowledge left.
  service.trainer().mutable_store().Upsert({0, 0, 0, 1.75, 1.0});
  const auto p = service.PredictResilient(0, 0);
  EXPECT_EQ(p.source,
            adapt::QoSPredictionService::PredictionSource::kLastKnownGood);
  EXPECT_DOUBLE_EQ(p.value, 1.75);
}

TEST(DegradationLadderTest, ConvergedModelServesFromTheModel) {
  adapt::QoSPredictionService service(ServiceConfig());
  service.RegisterUser("u0");
  service.RegisterService("s0");
  for (int i = 0; i < 60; ++i) {
    service.ReportObservation({0, 0, 0, 1.0, 1.0 + i});
    service.Tick(1.0 + i);
  }
  const auto p = service.PredictResilient(0, 0);
  EXPECT_EQ(p.source, adapt::QoSPredictionService::PredictionSource::kModel);
  EXPECT_TRUE(std::isfinite(p.value));
}

// --- End-to-end chaos integration ---------------------------------------

TEST(FaultInjectionIntegrationTest, SurvivesCorruptionAndCrashRestore) {
  const data::SyntheticConfig synth = SmallSynthetic();
  const data::SyntheticQoSDataset dataset(synth);
  const adapt::Environment env(dataset);

  adapt::FaultInjectorConfig faults;
  faults.drop_prob = 0.05;
  faults.corrupt_prob = 0.10;
  faults.duplicate_prob = 0.02;
  faults.seed = 1234;
  adapt::FaultInjector injector(env, faults);

  core::CheckpointManagerConfig ckpt;
  ckpt.directory = ::testing::TempDir() + "/fault_injection_ckpt";
  fs::remove_all(ckpt.directory);
  ckpt.interval_seconds = 30.0;
  ckpt.retention = 4;

  const auto make_service = [&]() {
    auto svc =
        std::make_unique<adapt::QoSPredictionService>(ServiceConfig());
    svc->EnableCheckpoints(ckpt);
    for (std::size_t u = 0; u < synth.users; ++u) {
      svc->RegisterUser("u" + std::to_string(u));
    }
    for (std::size_t s = 0; s < synth.services; ++s) {
      svc->RegisterService("s" + std::to_string(s));
    }
    return svc;
  };
  auto service = make_service();

  common::Rng rng(4321);
  const std::size_t ticks = 30;
  const double tick_seconds = 15.0;
  double now = 0.0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    now = static_cast<double>(tick + 1) * tick_seconds;
    for (int i = 0; i < 100; ++i) {
      const auto u = static_cast<data::UserId>(rng.Index(synth.users));
      const auto s = static_cast<data::ServiceId>(rng.Index(synth.services));
      for (const data::QoSSample& delivered : injector.Observe(u, s, now)) {
        service->ReportObservation(delivered);
      }
    }
    service->Tick(now);

    if (tick + 1 == ticks / 2) {
      // Simulated crash: only the checkpoint directory survives, and the
      // newest checkpoint is hand-truncated (torn write) so recovery has
      // to detect it and fall back to the previous valid one.
      service->checkpoints()->Save(service->model(),
                                   service->trainer().store(), now,
                                   service->trainer().last_epoch_error());
      service.reset();
      core::CheckpointManager probe(ckpt);
      const std::vector<std::string> files = probe.List();
      ASSERT_GE(files.size(), 2u);
      fs::resize_file(files.back(), fs::file_size(files.back()) / 2);

      service = make_service();
      ASSERT_TRUE(service->RestoreFromLatestCheckpoint());
      EXPECT_GE(service->checkpoints()->corrupt_skipped(), 1u);
    }
  }

  // Despite 10% corruption, every latent factor is finite.
  const core::AmfModel& model = service->model();
  for (data::UserId u = 0; u < model.num_users(); ++u) {
    for (const double x : model.UserFactors(u)) {
      ASSERT_TRUE(std::isfinite(x)) << "user " << u;
    }
  }
  for (data::ServiceId s = 0; s < model.num_services(); ++s) {
    for (const double x : model.ServiceFactors(s)) {
      ASSERT_TRUE(std::isfinite(x)) << "service " << s;
    }
  }

  // The ingestion guards caught faults (corruption produces non-finite,
  // non-positive, and absurd-magnitude values; duplication produces
  // re-deliveries).
  const core::PipelineStats stats = service->pipeline_stats();
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected(), 0u);
  EXPECT_GT(stats.rejected_nonfinite, 0u);
  EXPECT_GT(stats.rejected_duplicate, 0u);

  // End-state accuracy stays bounded: median relative error of resilient
  // predictions over the full matrix against ground truth.
  std::vector<double> pred;
  std::vector<double> truth;
  for (std::size_t u = 0; u < synth.users; ++u) {
    for (std::size_t s = 0; s < synth.services; ++s) {
      const auto p =
          service->PredictResilient(static_cast<data::UserId>(u),
                                    static_cast<data::ServiceId>(s));
      ASSERT_TRUE(std::isfinite(p.value));
      pred.push_back(p.value);
      truth.push_back(env.TrueResponseTime(static_cast<data::UserId>(u),
                                           static_cast<data::ServiceId>(s),
                                           now));
    }
  }
  const eval::Metrics m = eval::ComputeMetrics(pred, truth);
  EXPECT_EQ(m.count, synth.users * synth.services);
  EXPECT_LT(m.mre, 0.8) << "median relative error degraded under faults";

  fs::remove_all(ckpt.directory);
}

}  // namespace
}  // namespace amf

#include "adapt/prediction_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

namespace amf::adapt {
namespace {

TEST(PredictionServiceTest, RegistrationGrowsModel) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("app-1");
  const auto s = service.RegisterService("svc-1");
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(s, 0u);
  EXPECT_TRUE(service.model().HasUser(u));
  EXPECT_TRUE(service.model().HasService(s));
  EXPECT_TRUE(service.PredictQoS(u, s).has_value());
}

TEST(PredictionServiceTest, PredictUnknownReturnsNullopt) {
  QoSPredictionService service;
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
  service.RegisterUser("u");
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
}

TEST(PredictionServiceTest, ObservationsFlowThroughTick) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 200; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  const auto pred = service.PredictQoS(u, s);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 0.8, 0.3);
  EXPECT_EQ(service.observations(), 200u);
}

TEST(PredictionServiceTest, TrainToConvergence) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s1 = service.RegisterService("s1");
  const auto s2 = service.RegisterService("s2");
  for (int i = 0; i < 5; ++i) {
    service.ReportObservation({0, u, s1, 0.2, 0.0});
    service.ReportObservation({0, u, s2, 5.0, 0.0});
  }
  service.TrainToConvergence(0.0);
  ASSERT_TRUE(service.PredictQoS(u, s1).has_value());
  EXPECT_LT(*service.PredictQoS(u, s1), *service.PredictQoS(u, s2));
}

TEST(PredictionServiceTest, UnregisterDeactivatesButKeepsModel) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  EXPECT_TRUE(service.UnregisterUser("u"));
  EXPECT_FALSE(service.users().IsActive(u));
  // Model state is retained for a potential rejoin.
  EXPECT_TRUE(service.model().HasUser(u));
  EXPECT_FALSE(service.UnregisterUser("ghost"));
}

TEST(PredictionServiceTest, UncertaintyFallsWithTraining) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  const auto before = service.PredictQoSWithUncertainty(u, s);
  ASSERT_TRUE(before.has_value());
  EXPECT_DOUBLE_EQ(before->uncertainty, 1.0);  // initial_error on both sides
  for (int i = 0; i < 200; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  const auto after = service.PredictQoSWithUncertainty(u, s);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->uncertainty, 0.3 * before->uncertainty);
}

TEST(PredictionServiceTest, UncertaintyForUnknownIsNullopt) {
  QoSPredictionService service;
  EXPECT_FALSE(service.PredictQoSWithUncertainty(0, 0).has_value());
}

TEST(PredictionServiceTest, TickAdvancesTrainerClock) {
  QoSPredictionService service;
  service.Tick(1000.0);
  EXPECT_DOUBLE_EQ(service.trainer().now(), 1000.0);
  // Ticking with an older time must not move the clock backwards.
  service.Tick(500.0);
  EXPECT_DOUBLE_EQ(service.trainer().now(), 1000.0);
}

TEST(PredictionServiceTest, UnregisteredObservationsAreRejectedAndCounted) {
  QoSPredictionService service;
  service.ReportObservation({0, 0, 0, 1.0, 0.0});  // nobody registered
  EXPECT_EQ(service.observations(), 0u);
  EXPECT_EQ(service.pipeline_stats().rejected_unregistered, 1u);
  const auto u = service.RegisterUser("u");
  service.ReportObservation({0, u, 0, 1.0, 0.0});  // service side unknown
  EXPECT_EQ(service.observations(), 0u);
  EXPECT_EQ(service.pipeline_stats().rejected_unregistered, 2u);
  const auto s = service.RegisterService("s");
  service.ReportObservation({0, u, s, 1.0, 0.0});
  EXPECT_EQ(service.observations(), 1u);
}

TEST(PredictionServiceTest, LeaveThenRejoinKeepsLearnedFactors) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 50; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  const double trained = *service.PredictQoS(u, s);
  service.UnregisterUser("u");
  EXPECT_EQ(service.RegisterUser("u"), u);
  EXPECT_DOUBLE_EQ(*service.PredictQoS(u, s), trained);
}

TEST(PredictionServiceTest, RetireResetsSlotToColdStart) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 50; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  EXPECT_LT(service.model().UserError(u), 1.0);
  const double trained = *service.PredictQoS(u, s);
  ASSERT_TRUE(service.RetireUser("u"));
  ASSERT_TRUE(service.RetireService("s"));
  // The next tenants recycle the slots and start from the paper's
  // cold-start state: initial_error EMAs and deterministically
  // re-initialized rows — no trace of the previous tenant's training.
  EXPECT_EQ(service.RegisterUser("someone-else"), u);
  EXPECT_EQ(service.RegisterService("another-svc"), s);
  EXPECT_DOUBLE_EQ(service.model().UserError(u), 1.0);
  EXPECT_DOUBLE_EQ(service.model().ServiceError(s), 1.0);
  EXPECT_NE(*service.PredictQoS(u, s), trained);
  // The re-init is a pure function of (config seed, slot id): a second
  // service put through the identical history lands on the same value.
  QoSPredictionService twin;
  twin.RegisterUser("u");
  twin.RegisterService("s");
  for (int i = 0; i < 50; ++i) {
    twin.ReportObservation({0, u, s, 0.8, 0.0});
    twin.Tick(0.0);
  }
  twin.RetireUser("u");
  twin.RetireService("s");
  twin.RegisterUser("someone-else");
  twin.RegisterService("another-svc");
  EXPECT_DOUBLE_EQ(*twin.PredictQoS(u, s), *service.PredictQoS(u, s));
}

TEST(PredictionServiceTest, RetirePurgesSamplesAndFallbackState) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  service.ReportObservation({0, u, s, 0.8, 0.0});
  service.Tick(0.0);  // sample lands in the store
  EXPECT_TRUE(service.trainer().store().Contains(u, s));
  ASSERT_TRUE(service.RetireService("s"));
  EXPECT_FALSE(service.trainer().store().Contains(u, s));
  EXPECT_GE(service.pipeline_stats().purged_samples, 1u);
  // The degradation ladder no longer serves the retired tenant's mean.
  const auto res = service.PredictResilient(u, s);
  EXPECT_EQ(res.source, QoSPredictionService::PredictionSource::kUnavailable);
  EXPECT_TRUE(std::isnan(res.value));
}

TEST(PredictionServiceTest, RetirePurgesBufferedObservations) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  // Buffered in the collector, not yet flushed into the trainer.
  service.ReportObservation({0, u, s, 0.8, 0.0});
  ASSERT_TRUE(service.RetireUser("u"));
  EXPECT_GE(service.pipeline_stats().purged_samples, 1u);
  // The flush after retirement must not train the recycled slot.
  service.RegisterUser("next-tenant");
  service.Tick(0.0);
  EXPECT_FALSE(service.trainer().store().Contains(u, s));
  EXPECT_DOUBLE_EQ(service.model().UserError(u), 1.0);
}

TEST(PredictionServiceTest, PredictResilientRefusesUnregisteredIds) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 10; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
  }
  service.Tick(0.0);
  // Registered pair: some rung serves it.
  EXPECT_NE(service.PredictResilient(u, s).source,
            QoSPredictionService::PredictionSource::kUnavailable);
  // Never-registered ids refuse the whole ladder.
  const auto ghost = service.PredictResilient(7, 7);
  EXPECT_EQ(ghost.source,
            QoSPredictionService::PredictionSource::kUnavailable);
  EXPECT_TRUE(std::isnan(ghost.value));
  // Retired ids refuse it too, even though the model still has the rows.
  service.RetireUser("u");
  EXPECT_EQ(service.PredictResilient(u, s).source,
            QoSPredictionService::PredictionSource::kUnavailable);
}

TEST(PredictionServiceTest, CheckpointRestoreSurvivesReRegistrationOrder) {
  const std::string dir =
      ::testing::TempDir() + "/svc_ckpt_reorder";
  std::filesystem::remove_all(dir);
  core::CheckpointManagerConfig ckpt;
  ckpt.directory = dir;
  ckpt.interval_seconds = 0.0;

  const std::vector<std::string> users = {"alice", "bob", "carol"};
  QoSPredictionService service;
  for (const auto& name : users) service.RegisterUser(name);
  const auto s = service.RegisterService("svc");
  // Give each user a distinct QoS signature.
  double level = 0.5;
  for (const auto& name : users) {
    const auto u = *service.users().Lookup(name);
    for (int i = 0; i < 50; ++i) service.ReportObservation({0, u, s, level, 0.0});
    level += 1.0;
  }
  service.TrainToConvergence(0.0);
  service.EnableCheckpoints(ckpt);
  service.Tick(1.0);  // interval 0 => saves, registries included

  // "Restart": a fresh process restores, then names re-register in a
  // DIFFERENT order. v2 checkpoints carry the registries, so every name
  // must still predict from its own factors, not from whoever happened to
  // claim its dense id first.
  QoSPredictionService restarted;
  restarted.EnableCheckpoints(ckpt);
  ASSERT_TRUE(restarted.RestoreFromLatestCheckpoint());
  restarted.RegisterUser("carol");
  restarted.RegisterUser("alice");
  restarted.RegisterUser("bob");
  restarted.RegisterService("svc");
  for (const auto& name : users) {
    const auto u_old = *service.users().Lookup(name);
    const auto u_new = *restarted.users().Lookup(name);
    EXPECT_EQ(u_new, u_old) << name;
    EXPECT_DOUBLE_EQ(*restarted.PredictQoS(u_new, s),
                     *service.PredictQoS(u_old, s))
        << name;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amf::adapt

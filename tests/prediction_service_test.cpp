#include "adapt/prediction_service.h"

#include <gtest/gtest.h>

#include <cmath>

namespace amf::adapt {
namespace {

TEST(PredictionServiceTest, RegistrationGrowsModel) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("app-1");
  const auto s = service.RegisterService("svc-1");
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(s, 0u);
  EXPECT_TRUE(service.model().HasUser(u));
  EXPECT_TRUE(service.model().HasService(s));
  EXPECT_TRUE(service.PredictQoS(u, s).has_value());
}

TEST(PredictionServiceTest, PredictUnknownReturnsNullopt) {
  QoSPredictionService service;
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
  service.RegisterUser("u");
  EXPECT_FALSE(service.PredictQoS(0, 0).has_value());
}

TEST(PredictionServiceTest, ObservationsFlowThroughTick) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  for (int i = 0; i < 200; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  const auto pred = service.PredictQoS(u, s);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 0.8, 0.3);
  EXPECT_EQ(service.observations(), 200u);
}

TEST(PredictionServiceTest, TrainToConvergence) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s1 = service.RegisterService("s1");
  const auto s2 = service.RegisterService("s2");
  for (int i = 0; i < 5; ++i) {
    service.ReportObservation({0, u, s1, 0.2, 0.0});
    service.ReportObservation({0, u, s2, 5.0, 0.0});
  }
  service.TrainToConvergence(0.0);
  ASSERT_TRUE(service.PredictQoS(u, s1).has_value());
  EXPECT_LT(*service.PredictQoS(u, s1), *service.PredictQoS(u, s2));
}

TEST(PredictionServiceTest, UnregisterDeactivatesButKeepsModel) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  EXPECT_TRUE(service.UnregisterUser("u"));
  EXPECT_FALSE(service.users().IsActive(u));
  // Model state is retained for a potential rejoin.
  EXPECT_TRUE(service.model().HasUser(u));
  EXPECT_FALSE(service.UnregisterUser("ghost"));
}

TEST(PredictionServiceTest, UncertaintyFallsWithTraining) {
  QoSPredictionService service;
  const auto u = service.RegisterUser("u");
  const auto s = service.RegisterService("s");
  const auto before = service.PredictQoSWithUncertainty(u, s);
  ASSERT_TRUE(before.has_value());
  EXPECT_DOUBLE_EQ(before->uncertainty, 1.0);  // initial_error on both sides
  for (int i = 0; i < 200; ++i) {
    service.ReportObservation({0, u, s, 0.8, 0.0});
    service.Tick(0.0);
  }
  const auto after = service.PredictQoSWithUncertainty(u, s);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(after->uncertainty, 0.3 * before->uncertainty);
}

TEST(PredictionServiceTest, UncertaintyForUnknownIsNullopt) {
  QoSPredictionService service;
  EXPECT_FALSE(service.PredictQoSWithUncertainty(0, 0).has_value());
}

TEST(PredictionServiceTest, TickAdvancesTrainerClock) {
  QoSPredictionService service;
  service.Tick(1000.0);
  EXPECT_DOUBLE_EQ(service.trainer().now(), 1000.0);
  // Ticking with an older time must not move the clock backwards.
  service.Tick(500.0);
  EXPECT_DOUBLE_EQ(service.trainer().now(), 1000.0);
}

}  // namespace
}  // namespace amf::adapt

#include "exp/scale.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/check.h"

namespace amf::exp {
namespace {

class ScaleTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(ScaleTest, PaperScaleMatchesDataset) {
  const ExperimentScale s = PaperScale();
  EXPECT_EQ(s.users, 142u);
  EXPECT_EQ(s.services, 4500u);
  EXPECT_EQ(s.slices, 64u);
  EXPECT_EQ(s.densities.size(), 5u);
}

TEST_F(ScaleTest, SmallScaleIsSmaller) {
  const ExperimentScale s = SmallScale();
  EXPECT_LT(s.users, PaperScale().users);
  EXPECT_LT(s.services, PaperScale().services);
}

TEST_F(ScaleTest, EnvPresetSelection) {
  SetEnv("AMF_SCALE", "small");
  const ExperimentScale s = ScaleFromEnv();
  EXPECT_EQ(s.users, SmallScale().users);
}

TEST_F(ScaleTest, FieldOverrides) {
  SetEnv("AMF_USERS", "33");
  SetEnv("AMF_SERVICES", "44");
  SetEnv("AMF_SLICES", "5");
  SetEnv("AMF_ROUNDS", "6");
  SetEnv("AMF_SEED", "777");
  const ExperimentScale s = ScaleFromEnv();
  EXPECT_EQ(s.users, 33u);
  EXPECT_EQ(s.services, 44u);
  EXPECT_EQ(s.slices, 5u);
  EXPECT_EQ(s.rounds, 6u);
  EXPECT_EQ(s.seed, 777u);
}

TEST_F(ScaleTest, DensitiesOverride) {
  SetEnv("AMF_DENSITIES", "0.1,0.25");
  const ExperimentScale s = ScaleFromEnv();
  ASSERT_EQ(s.densities.size(), 2u);
  EXPECT_DOUBLE_EQ(s.densities[0], 0.1);
  EXPECT_DOUBLE_EQ(s.densities[1], 0.25);
}

TEST_F(ScaleTest, BadDensitiesThrow) {
  SetEnv("AMF_DENSITIES", "0.1,zzz");
  EXPECT_THROW(ScaleFromEnv(), common::CheckError);
}

TEST_F(ScaleTest, MakeDatasetHonorsScale) {
  ExperimentScale s = SmallScale();
  s.users = 12;
  s.services = 34;
  s.slices = 3;
  const auto dataset = MakeDataset(s);
  EXPECT_EQ(dataset->num_users(), 12u);
  EXPECT_EQ(dataset->num_services(), 34u);
  EXPECT_EQ(dataset->num_slices(), 3u);
}

TEST_F(ScaleTest, DescribeMentionsDimensions) {
  ExperimentScale s = SmallScale();
  const std::string d = Describe(s);
  EXPECT_NE(d.find("60"), std::string::npos);
  EXPECT_NE(d.find("500"), std::string::npos);
}

}  // namespace
}  // namespace amf::exp

#include "stream/sample_stream.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "data/synthetic.h"

namespace amf::stream {
namespace {

data::SyntheticQoSDataset MakeDataset() {
  data::SyntheticConfig cfg;
  cfg.users = 10;
  cfg.services = 20;
  cfg.slices = 4;
  cfg.seed = 3;
  return data::SyntheticQoSDataset(cfg);
}

TEST(SampleStreamTest, SliceSizeMatchesDensity) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.25;
  const SampleStream stream(dataset, cfg);
  EXPECT_EQ(stream.Slice(0).size(), 50u);  // 0.25 * 200
}

TEST(SampleStreamTest, ValuesMatchDataset) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.5;
  const SampleStream stream(dataset, cfg);
  for (const data::QoSSample& s : stream.Slice(2)) {
    EXPECT_EQ(s.slice, 2u);
    EXPECT_DOUBLE_EQ(
        s.value, dataset.Value(cfg.attribute, s.user, s.service, 2));
  }
}

TEST(SampleStreamTest, TimestampsWithinSliceWindow) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.3;
  cfg.slice_interval_seconds = 900.0;
  const SampleStream stream(dataset, cfg);
  for (const data::QoSSample& s : stream.Slice(1)) {
    EXPECT_GE(s.timestamp, 900.0);
    EXPECT_LT(s.timestamp, 1800.0);
  }
}

TEST(SampleStreamTest, PairsAreDistinctWithinSlice) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.4;
  const SampleStream stream(dataset, cfg);
  std::set<std::pair<data::UserId, data::ServiceId>> seen;
  for (const data::QoSSample& s : stream.Slice(0)) {
    EXPECT_TRUE(seen.insert({s.user, s.service}).second);
  }
}

TEST(SampleStreamTest, FixedDeploymentObservesSamePairsEverySlice) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.2;
  cfg.resample_pairs_each_slice = false;
  const SampleStream stream(dataset, cfg);
  auto pairs_of = [&](data::SliceId t) {
    std::set<std::pair<data::UserId, data::ServiceId>> out;
    for (const auto& s : stream.Slice(t)) out.insert({s.user, s.service});
    return out;
  };
  EXPECT_EQ(pairs_of(0), pairs_of(3));
}

TEST(SampleStreamTest, ResampledDeploymentVariesPairs) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.2;
  cfg.resample_pairs_each_slice = true;
  const SampleStream stream(dataset, cfg);
  std::set<std::pair<data::UserId, data::ServiceId>> p0, p1;
  for (const auto& s : stream.Slice(0)) p0.insert({s.user, s.service});
  for (const auto& s : stream.Slice(1)) p1.insert({s.user, s.service});
  EXPECT_NE(p0, p1);
}

TEST(SampleStreamTest, DeterministicInSeed) {
  const auto dataset = MakeDataset();
  StreamConfig cfg;
  cfg.density = 0.3;
  cfg.seed = 8;
  const SampleStream a(dataset, cfg);
  const SampleStream b(dataset, cfg);
  const auto sa = a.Slice(1);
  const auto sb = b.Slice(1);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST(SampleStreamTest, InvalidConfigThrows) {
  const auto dataset = MakeDataset();
  StreamConfig bad;
  bad.density = 0.0;
  EXPECT_THROW(SampleStream(dataset, bad), common::CheckError);
  StreamConfig bad2;
  bad2.slice_interval_seconds = 0.0;
  EXPECT_THROW(SampleStream(dataset, bad2), common::CheckError);
}

TEST(SampleStreamTest, SliceOutOfRangeThrows) {
  const auto dataset = MakeDataset();
  const SampleStream stream(dataset, StreamConfig{});
  EXPECT_THROW(stream.Slice(4), common::CheckError);
}

}  // namespace
}  // namespace amf::stream

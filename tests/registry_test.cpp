#include "adapt/registry.h"

#include <gtest/gtest.h>

namespace amf::adapt {
namespace {

TEST(RegistryTest, JoinAssignsDenseIds) {
  UserRegistry reg;
  EXPECT_EQ(reg.Join("a"), 0u);
  EXPECT_EQ(reg.Join("b"), 1u);
  EXPECT_EQ(reg.Join("c"), 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, RejoinKeepsId) {
  UserRegistry reg;
  const auto id = reg.Join("a");
  reg.Join("b");
  EXPECT_EQ(reg.Join("a"), id);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryTest, LookupAndName) {
  ServiceRegistry reg;
  const auto id = reg.Join("weather");
  EXPECT_EQ(*reg.Lookup("weather"), id);
  EXPECT_FALSE(reg.Lookup("unknown").has_value());
  EXPECT_EQ(reg.Name(id), "weather");
}

TEST(RegistryTest, LeaveDeactivatesWithoutReuse) {
  UserRegistry reg;
  const auto a = reg.Join("a");
  EXPECT_TRUE(reg.IsActive(a));
  EXPECT_TRUE(reg.Leave("a"));
  EXPECT_FALSE(reg.IsActive(a));
  // New entity gets a fresh id; "a" keeps its old one on rejoin.
  const auto b = reg.Join("b");
  EXPECT_NE(b, a);
  EXPECT_EQ(reg.Join("a"), a);
  EXPECT_TRUE(reg.IsActive(a));
}

TEST(RegistryTest, LeaveUnknownReturnsFalse) {
  UserRegistry reg;
  EXPECT_FALSE(reg.Leave("ghost"));
}

TEST(RegistryTest, ActiveIds) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  reg.Join("c");
  reg.Leave("b");
  const auto active = reg.ActiveIds();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 0u);
  EXPECT_EQ(active[1], 2u);
}

TEST(RegistryTest, IsActiveOutOfRangeIsFalse) {
  UserRegistry reg;
  EXPECT_FALSE(reg.IsActive(0));
}

}  // namespace
}  // namespace amf::adapt

#include "adapt/registry.h"

#include <gtest/gtest.h>

namespace amf::adapt {
namespace {

TEST(RegistryTest, JoinAssignsDenseIds) {
  UserRegistry reg;
  EXPECT_EQ(reg.Join("a"), 0u);
  EXPECT_EQ(reg.Join("b"), 1u);
  EXPECT_EQ(reg.Join("c"), 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, RejoinKeepsId) {
  UserRegistry reg;
  const auto id = reg.Join("a");
  reg.Join("b");
  EXPECT_EQ(reg.Join("a"), id);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryTest, LookupAndName) {
  ServiceRegistry reg;
  const auto id = reg.Join("weather");
  EXPECT_EQ(*reg.Lookup("weather"), id);
  EXPECT_FALSE(reg.Lookup("unknown").has_value());
  EXPECT_EQ(reg.Name(id), "weather");
}

TEST(RegistryTest, LeaveDeactivatesWithoutReuse) {
  UserRegistry reg;
  const auto a = reg.Join("a");
  EXPECT_TRUE(reg.IsActive(a));
  EXPECT_TRUE(reg.Leave("a"));
  EXPECT_FALSE(reg.IsActive(a));
  // New entity gets a fresh id; "a" keeps its old one on rejoin.
  const auto b = reg.Join("b");
  EXPECT_NE(b, a);
  EXPECT_EQ(reg.Join("a"), a);
  EXPECT_TRUE(reg.IsActive(a));
}

TEST(RegistryTest, LeaveUnknownReturnsFalse) {
  UserRegistry reg;
  EXPECT_FALSE(reg.Leave("ghost"));
}

TEST(RegistryTest, ActiveIds) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  reg.Join("c");
  reg.Leave("b");
  const auto active = reg.ActiveIds();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 0u);
  EXPECT_EQ(active[1], 2u);
}

TEST(RegistryTest, IsActiveOutOfRangeIsFalse) {
  UserRegistry reg;
  EXPECT_FALSE(reg.IsActive(0));
}

TEST(RegistryTest, RetireRecyclesSlotUnderFreshGeneration) {
  UserRegistry reg;
  const auto a = reg.Join("a");
  const auto gen0 = reg.GenerationOf(a);
  const auto retired = reg.Retire("a");
  ASSERT_TRUE(retired.has_value());
  EXPECT_EQ(*retired, a);
  EXPECT_TRUE(reg.IsFree(a));
  EXPECT_FALSE(reg.IsKnown(a));
  EXPECT_EQ(reg.free_slots(), 1u);
  // The next join reuses the slot — same id, bumped generation.
  const auto b = reg.Join("b");
  EXPECT_EQ(b, a);
  EXPECT_EQ(reg.GenerationOf(b), gen0 + 1);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.free_slots(), 0u);
  EXPECT_EQ(reg.recycled_total(), 1u);
}

TEST(RegistryTest, StaleHandleDoesNotAliasRecycledSlot) {
  UserRegistry reg;
  const auto stale = reg.JoinHandle("a");
  EXPECT_TRUE(reg.IsCurrent(stale));
  reg.Retire("a");
  EXPECT_FALSE(reg.IsCurrent(stale));
  // "b" now owns the recycled slot; the old handle must still be stale.
  reg.Join("b");
  EXPECT_FALSE(reg.IsCurrent(stale));
  const auto fresh = reg.LookupHandle("b");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->id, stale.id);
  EXPECT_TRUE(reg.IsCurrent(*fresh));
}

TEST(RegistryTest, RetireUnknownOrTwiceFails) {
  UserRegistry reg;
  EXPECT_FALSE(reg.Retire("ghost").has_value());
  reg.Join("a");
  EXPECT_TRUE(reg.Retire("a").has_value());
  EXPECT_FALSE(reg.Retire("a").has_value());
}

TEST(RegistryTest, RetireDepartedEntityWorks) {
  UserRegistry reg;
  const auto a = reg.Join("a");
  reg.Leave("a");
  EXPECT_TRUE(reg.IsKnown(a));  // departed slots still own their factors
  EXPECT_EQ(reg.num_active(), 0u);
  ASSERT_TRUE(reg.Retire("a").has_value());
  EXPECT_FALSE(reg.IsKnown(a));
  EXPECT_EQ(reg.num_active(), 0u);
}

TEST(RegistryTest, FreeListIsLifo) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  reg.Join("c");
  reg.Retire("a");
  reg.Retire("c");
  // Last retired, first reused.
  EXPECT_EQ(reg.Join("d"), 2u);
  EXPECT_EQ(reg.Join("e"), 0u);
  EXPECT_EQ(reg.Join("f"), 3u);  // free-list empty -> dense growth resumes
}

TEST(RegistryTest, NumActiveTracksLifecycle) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  EXPECT_EQ(reg.num_active(), 2u);
  reg.Leave("a");
  EXPECT_EQ(reg.num_active(), 1u);
  reg.Join("a");  // rejoin reactivates
  EXPECT_EQ(reg.num_active(), 2u);
  reg.Retire("b");
  EXPECT_EQ(reg.num_active(), 1u);
}

TEST(RegistryTest, ActiveIdsSkipsFreeSlots) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  reg.Join("c");
  reg.Retire("b");
  const auto active = reg.ActiveIds();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 0u);
  EXPECT_EQ(active[1], 2u);
}

TEST(RegistryTest, ImageRoundTripPreservesLifecycle) {
  UserRegistry reg;
  reg.Join("a");
  reg.Join("b");
  reg.Join("c");
  reg.Leave("b");
  reg.Retire("c");
  reg.Join("d");  // recycles c's slot
  reg.Retire("a");

  const UserRegistry copy = UserRegistry::FromImage(reg.ToImage());
  EXPECT_EQ(copy.size(), reg.size());
  EXPECT_EQ(copy.num_active(), reg.num_active());
  EXPECT_EQ(copy.free_slots(), reg.free_slots());
  EXPECT_EQ(copy.recycled_total(), reg.recycled_total());
  EXPECT_EQ(copy.Lookup("b"), reg.Lookup("b"));
  EXPECT_EQ(copy.Lookup("d"), reg.Lookup("d"));
  EXPECT_FALSE(copy.Lookup("a").has_value());
  EXPECT_FALSE(copy.Lookup("c").has_value());
  for (data::UserId id = 0; id < copy.size(); ++id) {
    EXPECT_EQ(copy.State(id), reg.State(id)) << id;
    EXPECT_EQ(copy.GenerationOf(id), reg.GenerationOf(id)) << id;
  }
  // The restored free-list hands out the same slots in the same order.
  UserRegistry replay = UserRegistry::FromImage(reg.ToImage());
  EXPECT_EQ(replay.Join("x"), reg.Join("x"));
}

}  // namespace
}  // namespace amf::adapt

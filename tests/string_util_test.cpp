#include "common/string_util.h"

#include <gtest/gtest.h>

namespace amf::common {
namespace {

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(ToLower("AbC-123"), "abc-123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t x\n"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("  -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
}

TEST(ParseIntTest, ValidInputs) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
}

TEST(ParseIntTest, InvalidInputs) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("12.5").has_value());
  EXPECT_FALSE(ParseInt("x").has_value());
}

TEST(FormatFixedTest, Precision) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(1.0, 3), "1.000");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace amf::common

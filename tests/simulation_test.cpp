#include "adapt/simulation.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/synthetic.h"

namespace amf::adapt {
namespace {

data::SyntheticQoSDataset MakeDataset() {
  data::SyntheticConfig cfg;
  cfg.users = 6;
  cfg.services = 9;
  cfg.slices = 8;
  cfg.seed = 12;
  return data::SyntheticQoSDataset(cfg);
}

Workflow MakeWorkflow() {
  return Workflow({{"a", {0, 1, 2}}, {"b", {3, 4, 5}}, {"c", {6, 7, 8}}});
}

TEST(SimulationTest, RunsConfiguredTicks) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  NoAdaptationPolicy policy;
  SimulationConfig cfg;
  cfg.ticks = 5;
  cfg.tick_seconds = 900.0;
  AdaptationSimulation sim(env, nullptr, cfg);
  sim.AddApplication(0, MakeWorkflow(), policy, 2.0);
  sim.AddApplication(1, MakeWorkflow(), policy, 2.0);
  sim.Run();
  EXPECT_EQ(sim.ticks_run(), 5u);
  EXPECT_DOUBLE_EQ(sim.Now(), 5 * 900.0);
  EXPECT_EQ(sim.TotalStats().invocations, 2u * 3u * 5u);
}

TEST(SimulationTest, StepOnceAdvancesClock) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  NoAdaptationPolicy policy;
  SimulationConfig cfg;
  cfg.ticks = 3;
  AdaptationSimulation sim(env, nullptr, cfg);
  sim.AddApplication(0, MakeWorkflow(), policy, 2.0);
  sim.StepOnce();
  EXPECT_EQ(sim.ticks_run(), 1u);
  sim.Run();  // completes the remaining 2
  EXPECT_EQ(sim.ticks_run(), 3u);
}

TEST(SimulationTest, PredictionServiceCollectsAllObservations) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  QoSPredictionService service;
  for (int u = 0; u < 2; ++u) service.RegisterUser("u" + std::to_string(u));
  for (int s = 0; s < 9; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  NoAdaptationPolicy policy;
  SimulationConfig cfg;
  cfg.ticks = 4;
  AdaptationSimulation sim(env, &service, cfg);
  sim.AddApplication(0, MakeWorkflow(), policy, 2.0);
  sim.AddApplication(1, MakeWorkflow(), policy, 2.0);
  sim.Run();
  EXPECT_EQ(service.observations(), 2u * 3u * 4u);
}

TEST(SimulationTest, OraclePolicyReducesViolationsVsNone) {
  const auto dataset = MakeDataset();
  const double sla = 1.5;
  SimulationConfig cfg;
  cfg.ticks = 8;

  Environment env1(dataset, 900.0);
  NoAdaptationPolicy none;
  AdaptationSimulation sim_none(env1, nullptr, cfg);
  for (data::UserId u = 0; u < 4; ++u) {
    sim_none.AddApplication(u, MakeWorkflow(), none, sla);
  }
  sim_none.Run();

  Environment env2(dataset, 900.0);
  OraclePolicy oracle(env2);
  AdaptationSimulation sim_oracle(env2, nullptr, cfg);
  for (data::UserId u = 0; u < 4; ++u) {
    sim_oracle.AddApplication(u, MakeWorkflow(), oracle, sla);
  }
  sim_oracle.Run();

  EXPECT_LE(sim_oracle.TotalStats().violations,
            sim_none.TotalStats().violations);
}

TEST(SimulationTest, InvalidConfigThrows) {
  const auto dataset = MakeDataset();
  Environment env(dataset, 900.0);
  SimulationConfig bad;
  bad.ticks = 0;
  EXPECT_THROW(AdaptationSimulation(env, nullptr, bad), common::CheckError);
}

}  // namespace
}  // namespace amf::adapt

// Codec tests for the serving wire protocol (serve/protocol.h):
// encode/decode round-trips for every opcode, then the fuzz-ish
// malformed-input sweep the server's close-on-protocol-error behavior
// depends on — truncated frames at every byte offset, oversized and
// undersized length prefixes, garbage opcodes/status bytes, payload
// sizes that contradict their opcode. The decoder must classify every
// one of these as kNeedMore or kProtocolError without reading out of
// bounds (the ASan CI job runs this suite).
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace amf::serve {
namespace {

Frame MustDecode(const std::string& wire, std::size_t* consumed) {
  Frame frame;
  std::string error;
  const DecodeResult r = DecodeFrame(wire, &frame, consumed, &error);
  EXPECT_EQ(r, DecodeResult::kFrame) << error;
  return frame;
}

TEST(ServeProtocolTest, PingRoundTrip) {
  std::string wire;
  AppendPingRequest(wire, 42);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(f.header.opcode, Opcode::kPing);
  EXPECT_FALSE(f.header.is_response);
  EXPECT_EQ(f.header.request_id, 42u);
  EXPECT_TRUE(f.payload.empty());

  wire.clear();
  AppendPingResponse(wire, 42);
  const Frame r = MustDecode(wire, &consumed);
  EXPECT_TRUE(r.header.is_response);
  EXPECT_EQ(r.header.opcode, Opcode::kPing);
}

TEST(ServeProtocolTest, PredictRoundTrip) {
  std::string wire;
  AppendPredictRequest(wire, 7, 3, 11);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  EXPECT_EQ(f.header.opcode, Opcode::kPredict);
  PredictPayload p;
  ASSERT_TRUE(ParsePredict(f.payload, &p));
  EXPECT_EQ(p.user, 3u);
  EXPECT_EQ(p.service, 11u);

  wire.clear();
  AppendPredictResponse(wire, 7, Status::kOk, 0.125);
  const Frame r = MustDecode(wire, &consumed);
  EXPECT_TRUE(r.header.is_response);
  EXPECT_EQ(r.header.status, Status::kOk);
  double value = 0.0;
  ASSERT_TRUE(ParsePredictResponse(r.payload, &value));
  EXPECT_EQ(value, 0.125);

  // NaN survives the f64 payload bit-exactly (kUnknownEntity carrier).
  wire.clear();
  AppendPredictResponse(wire, 8, Status::kUnknownEntity,
                        std::numeric_limits<double>::quiet_NaN());
  const Frame rn = MustDecode(wire, &consumed);
  EXPECT_EQ(rn.header.status, Status::kUnknownEntity);
  ASSERT_TRUE(ParsePredictResponse(rn.payload, &value));
  EXPECT_TRUE(std::isnan(value));
}

TEST(ServeProtocolTest, PredictManyRoundTrip) {
  const std::vector<data::ServiceId> services = {5, 9, 1, 1000000};
  std::string wire;
  AppendPredictManyRequest(wire, 99, 4, services);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  PredictManyPayload p;
  ASSERT_TRUE(ParsePredictMany(f.payload, &p));
  EXPECT_EQ(p.user, 4u);
  EXPECT_EQ(p.services, services);

  const std::vector<double> values = {0.5, -1.25, 1e300, 0.0};
  wire.clear();
  AppendPredictManyResponse(wire, 99, Status::kOk, values);
  const Frame r = MustDecode(wire, &consumed);
  std::vector<double> round;
  ASSERT_TRUE(ParsePredictManyResponse(r.payload, &round));
  EXPECT_EQ(round, values);
}

TEST(ServeProtocolTest, ReportObsRoundTrip) {
  data::QoSSample sample{2, 7, 13, 0.375, 123.5};
  std::string wire;
  AppendReportObsRequest(wire, 1, sample);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  data::QoSSample out{};
  ASSERT_TRUE(ParseReportObs(f.payload, &out));
  EXPECT_EQ(out.slice, sample.slice);
  EXPECT_EQ(out.user, sample.user);
  EXPECT_EQ(out.service, sample.service);
  EXPECT_EQ(out.value, sample.value);
  EXPECT_EQ(out.timestamp, sample.timestamp);
}

TEST(ServeProtocolTest, MetricsRoundTripCarriesJsonVerbatim) {
  const std::string json = "{\"counters\": {\"serve.requests\": 3}}";
  std::string wire;
  AppendMetricsResponse(wire, 5, json);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  EXPECT_TRUE(f.header.is_response);
  EXPECT_EQ(f.payload, json);
}

TEST(ServeProtocolTest, BackToBackFramesDecodeSequentially) {
  std::string wire;
  AppendPingRequest(wire, 1);
  AppendPredictRequest(wire, 2, 0, 0);
  AppendMetricsRequest(wire, 3);
  std::size_t off = 0;
  std::vector<std::uint64_t> ids;
  while (off < wire.size()) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    ASSERT_EQ(DecodeFrame(std::string_view(wire).substr(off), &frame,
                          &consumed, &error),
              DecodeResult::kFrame);
    ids.push_back(frame.header.request_id);
    off += consumed;
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
}

// --- Malformed input sweep ----------------------------------------------

TEST(ServeProtocolTest, EveryTruncationIsNeedMoreNeverAFrame) {
  std::string wire;
  AppendPredictManyRequest(wire, 17, 2, std::vector<data::ServiceId>{1, 2, 3});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult r = DecodeFrame(
        std::string_view(wire).substr(0, cut), &frame, &consumed, &error);
    EXPECT_EQ(r, DecodeResult::kNeedMore) << "cut at byte " << cut;
  }
}

TEST(ServeProtocolTest, OversizedLengthPrefixIsAnImmediateError) {
  // A flipped high bit in the length must be rejected from the 4-byte
  // prefix alone — never "kNeedMore" (the server would buffer gigabytes
  // waiting for a frame that is really corruption).
  std::string wire;
  const std::uint32_t huge = kMaxFrameLen + 1;
  wire.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
            DecodeResult::kProtocolError);
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocolTest, LengthBelowFixedHeaderIsAnError) {
  for (std::uint32_t len = 0; len < kFrameFixedBytes; ++len) {
    std::string wire;
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.append(len, '\0');
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
              DecodeResult::kProtocolError)
        << "frame_len " << len;
  }
}

TEST(ServeProtocolTest, GarbageOpcodesAreErrors) {
  for (int op = 0; op < 256; ++op) {
    const std::uint8_t base = static_cast<std::uint8_t>(op) &
                              static_cast<std::uint8_t>(~kResponseBit);
    const bool known =
        base >= static_cast<std::uint8_t>(Opcode::kPing) &&
        base <= static_cast<std::uint8_t>(Opcode::kMetrics);
    std::string wire;
    const std::uint32_t len = kFrameFixedBytes;  // empty payload
    wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
    wire.push_back(static_cast<char>(op));
    wire.push_back('\0');  // status kOk
    wire.append(8, '\0');  // request_id
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult r = DecodeFrame(wire, &frame, &consumed, &error);
    if (!known) {
      EXPECT_EQ(r, DecodeResult::kProtocolError) << "opcode " << op;
    } else {
      // A known opcode with an empty payload is only valid when its
      // contract says so; either way it must not be misclassified as
      // kNeedMore (the bytes are all there).
      EXPECT_NE(r, DecodeResult::kNeedMore) << "opcode " << op;
    }
  }
}

TEST(ServeProtocolTest, UnknownStatusByteIsAnError) {
  std::string wire;
  AppendPingResponse(wire, 9);
  wire[5] = 17;  // status byte, after the u32 length and opcode
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
            DecodeResult::kProtocolError);
}

TEST(ServeProtocolTest, PayloadSizeContradictingOpcodeIsAnError) {
  // PREDICT with a 3-byte payload: structurally complete, semantically
  // impossible.
  std::string wire;
  const std::uint32_t len = kFrameFixedBytes + 3;
  wire.append(reinterpret_cast<const char*>(&len), sizeof(len));
  wire.push_back(static_cast<char>(Opcode::kPredict));
  wire.push_back('\0');
  wire.append(8, '\0');
  wire.append(3, 'x');
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
            DecodeResult::kProtocolError);
}

TEST(ServeProtocolTest, PredictManyCountMismatchRejected) {
  // count says 100 services but the payload carries 2.
  std::string wire;
  AppendPredictManyRequest(wire, 1, 0, std::vector<data::ServiceId>{1, 2});
  std::uint32_t bogus_count = 100;
  std::memcpy(wire.data() + 4 + kFrameFixedBytes + 4, &bogus_count,
              sizeof(bogus_count));
  std::size_t consumed = 0;
  Frame frame;
  std::string error;
  // Structurally the frame still parses (variable-size opcode)...
  ASSERT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
            DecodeResult::kFrame);
  // ...but the typed parser must refuse it (the server treats a false
  // here as a protocol error and closes).
  PredictManyPayload p;
  EXPECT_FALSE(ParsePredictMany(frame.payload, &p));
}

TEST(ServeProtocolTest, PredictManyCountAboveCapRejected) {
  std::string req;
  AppendPredictManyRequest(req, 1, 0, std::vector<data::ServiceId>{});
  std::uint32_t count = kMaxPredictManyCandidates + 1;
  std::memcpy(req.data() + 4 + kFrameFixedBytes + 4, &count, sizeof(count));
  std::size_t consumed = 0;
  Frame frame;
  std::string error;
  ASSERT_EQ(DecodeFrame(req, &frame, &consumed, &error), DecodeResult::kFrame);
  PredictManyPayload p;
  EXPECT_FALSE(ParsePredictMany(frame.payload, &p));

  std::vector<double> values;
  std::string resp;
  resp.append(reinterpret_cast<const char*>(&count), sizeof(count));
  EXPECT_FALSE(ParsePredictManyResponse(resp, &values));
}

TEST(ServeProtocolTest, RandomBytesNeverCrashTheDecoder) {
  // Deterministic pseudo-random garbage: every outcome is acceptable
  // except UB; run under ASan/UBSan this is the actual assertion.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string wire;
    const std::size_t n = next() % 64;
    for (std::size_t i = 0; i < n; ++i) {
      wire.push_back(static_cast<char>(next() & 0xff));
    }
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult r = DecodeFrame(wire, &frame, &consumed, &error);
    if (r == DecodeResult::kFrame) {
      EXPECT_LE(consumed, wire.size());
      EXPECT_LE(frame.payload.size(), wire.size());
    }
  }
}

TEST(ServeProtocolTest, PingResponseCarriesThisBuildsWireMarker) {
  // Version 1 in the high nibble; this build's endianness bit low. The
  // marker is how a client detects a cross-endian/cross-version server
  // before trusting any fixed-layout integer.
  EXPECT_EQ(kWireMarker >> 4, kProtocolVersion);
  std::string wire;
  AppendPingResponse(wire, 7);
  std::size_t consumed = 0;
  const Frame f = MustDecode(wire, &consumed);
  EXPECT_EQ(f.header.opcode, Opcode::kPing);
  EXPECT_TRUE(f.header.is_response);
  ASSERT_EQ(f.payload.size(), 1u);
  std::uint8_t marker = 0;
  ASSERT_TRUE(ParsePingResponse(f.payload, &marker));
  EXPECT_EQ(marker, kWireMarker);
  // A forged foreign marker round-trips verbatim (the client compares).
  std::string foreign;
  AppendPingResponse(foreign, 8, static_cast<std::uint8_t>(kWireMarker ^ 1));
  const Frame g = MustDecode(foreign, &consumed);
  ASSERT_TRUE(ParsePingResponse(g.payload, &marker));
  EXPECT_NE(marker, kWireMarker);
}

TEST(ServeProtocolTest, ErrorResponseRoundTripsForEveryOpcode) {
  for (const Opcode op : {Opcode::kPing, Opcode::kPredict,
                          Opcode::kPredictMany, Opcode::kReportObs,
                          Opcode::kMetrics}) {
    std::string wire;
    AppendErrorResponse(wire, op, 99);
    EXPECT_EQ(wire.size(), kFrameOverheadBytes);
    std::size_t consumed = 0;
    const Frame f = MustDecode(wire, &consumed);
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(f.header.opcode, op);
    EXPECT_TRUE(f.header.is_response);
    EXPECT_EQ(f.header.status, Status::kError);
    EXPECT_EQ(f.header.request_id, 99u);
    EXPECT_TRUE(f.payload.empty());
  }
}

TEST(ServeProtocolTest, ErrorResponseWithPayloadIsAProtocolError) {
  // kError frames are defined payload-empty; a non-empty one is either
  // corruption or a peer speaking a different dialect.
  std::string wire;
  AppendErrorResponse(wire, Opcode::kPredict, 5);
  // Grow the payload by one byte and fix up the length prefix.
  wire.push_back('\0');
  std::uint32_t len = static_cast<std::uint32_t>(wire.size() - 4);
  std::memcpy(wire.data(), &len, sizeof(len));
  Frame frame;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(wire, &frame, &consumed, &error),
            DecodeResult::kProtocolError);
}

TEST(ServeProtocolTest, PeekRequestHeaderRecoversRejectableRequests) {
  // A payload-size lie still has a parseable fixed header: the server
  // can address a kError frame at it.
  std::string wire;
  AppendPredictRequest(wire, 1234, 1, 2);
  wire.resize(wire.size() - 1);  // truncate payload
  std::uint32_t len = static_cast<std::uint32_t>(wire.size() - 4);
  std::memcpy(wire.data(), &len, sizeof(len));
  FrameHeader h;
  ASSERT_TRUE(PeekRequestHeader(wire, &h));
  EXPECT_EQ(h.opcode, Opcode::kPredict);
  EXPECT_FALSE(h.is_response);
  EXPECT_EQ(h.request_id, 1234u);

  // Too short for a fixed header: nothing to recover.
  EXPECT_FALSE(PeekRequestHeader(wire.substr(0, kFrameOverheadBytes - 1), &h));

  // Unknown opcode: unframeable garbage, silent close.
  std::string garbage = wire;
  garbage[4] = '\x7f';
  EXPECT_FALSE(PeekRequestHeader(garbage, &h));

  // A response sent at the server: not a request, no error frame owed.
  std::string response;
  AppendPredictResponse(response, 9, Status::kOk, 1.0);
  EXPECT_FALSE(PeekRequestHeader(response, &h));
}

}  // namespace
}  // namespace amf::serve

#include "stream/collector.h"

#include <gtest/gtest.h>

namespace amf::stream {
namespace {

TEST(CollectorTest, BuffersUntilFlush) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::OnlineTrainer trainer(model);
  Collector collector(trainer);

  collector.Collect({0, 0, 0, 1.0, 0.0});
  collector.Collect({0, 0, 1, 2.0, 0.0});
  EXPECT_EQ(collector.buffered(), 2u);
  EXPECT_EQ(collector.total_collected(), 2u);
  EXPECT_EQ(trainer.store().size(), 0u);  // nothing handed over yet

  EXPECT_EQ(collector.Flush(), 2u);
  EXPECT_EQ(collector.buffered(), 0u);
  trainer.ProcessIncoming();
  EXPECT_EQ(trainer.store().size(), 2u);
}

TEST(CollectorTest, CollectBatch) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::OnlineTrainer trainer(model);
  Collector collector(trainer);
  std::vector<data::QoSSample> batch = {
      {0, 0, 0, 1.0, 0.0}, {0, 1, 0, 2.0, 0.0}, {0, 1, 1, 3.0, 0.0}};
  collector.CollectBatch(batch);
  EXPECT_EQ(collector.buffered(), 3u);
  EXPECT_EQ(collector.Flush(), 3u);
  trainer.ProcessIncoming();
  EXPECT_EQ(model.updates(), 3u);
}

TEST(CollectorTest, RemoveDropsOnlyTheNamedEntity) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::OnlineTrainer trainer(model);
  Collector collector(trainer);
  collector.Collect({0, 0, 0, 1.0, 0.0});
  collector.Collect({0, 1, 0, 2.0, 0.0});
  collector.Collect({0, 0, 1, 3.0, 0.0});
  collector.Collect({0, 1, 1, 4.0, 0.0});
  EXPECT_EQ(collector.RemoveUser(0), 2u);
  EXPECT_EQ(collector.buffered(), 2u);
  EXPECT_EQ(collector.RemoveService(1), 1u);
  EXPECT_EQ(collector.RemoveUser(7), 0u);
  // The survivor is exactly user 1 / service 0.
  EXPECT_EQ(collector.Flush(), 1u);
  trainer.ProcessIncoming();
  EXPECT_TRUE(trainer.store().Contains(1, 0));
  EXPECT_EQ(trainer.store().size(), 1u);
}

TEST(CollectorTest, TotalCollectedAccumulatesAcrossFlushes) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::OnlineTrainer trainer(model);
  Collector collector(trainer);
  collector.Collect({0, 0, 0, 1.0, 0.0});
  collector.Flush();
  collector.Collect({0, 0, 1, 1.0, 0.0});
  collector.Flush();
  EXPECT_EQ(collector.total_collected(), 2u);
}

TEST(CollectorTest, FlushOnEmptyIsZero) {
  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::OnlineTrainer trainer(model);
  Collector collector(trainer);
  EXPECT_EQ(collector.Flush(), 0u);
}

}  // namespace
}  // namespace amf::stream

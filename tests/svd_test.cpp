#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/random_init.h"

namespace amf::linalg {
namespace {

TEST(SymmetricEigenvaluesTest, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  const auto eigs = SymmetricEigenvalues(m);
  ASSERT_EQ(eigs.size(), 3u);
  EXPECT_NEAR(eigs[0], 3.0, 1e-10);
  EXPECT_NEAR(eigs[1], 2.0, 1e-10);
  EXPECT_NEAR(eigs[2], 1.0, 1e-10);
}

TEST(SymmetricEigenvaluesTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  const auto eigs = SymmetricEigenvalues(m);
  EXPECT_NEAR(eigs[0], 3.0, 1e-10);
  EXPECT_NEAR(eigs[1], 1.0, 1e-10);
}

TEST(SymmetricEigenvaluesTest, TraceAndNormPreserved) {
  common::Rng rng(1);
  const std::size_t n = 12;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.Normal();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  const auto eigs = SymmetricEigenvalues(m);
  double trace = 0.0, eig_sum = 0.0, eig_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += m(i, i);
  for (double e : eigs) {
    eig_sum += e;
    eig_sq += e * e;
  }
  EXPECT_NEAR(eig_sum, trace, 1e-8);
  EXPECT_NEAR(std::sqrt(eig_sq), m.FrobeniusNorm(), 1e-8);
}

TEST(SymmetricEigenvaluesTest, AsymmetricInputThrows) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 2.0;
  EXPECT_THROW(SymmetricEigenvalues(m), common::CheckError);
}

TEST(SymmetricEigenvaluesTest, NonSquareThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(SymmetricEigenvalues(m), common::CheckError);
}

TEST(SingularValuesTest, DiagonalRectangular) {
  Matrix m(2, 4);
  m(0, 0) = 5.0;
  m(1, 1) = 3.0;
  const auto sv = SingularValues(m);
  ASSERT_EQ(sv.size(), 2u);
  EXPECT_NEAR(sv[0], 5.0, 1e-10);
  EXPECT_NEAR(sv[1], 3.0, 1e-10);
}

TEST(SingularValuesTest, MatchesFrobeniusNorm) {
  common::Rng rng(3);
  Matrix m(10, 25);
  FillGaussian(m, rng, 1.0);
  const auto sv = SingularValues(m);
  ASSERT_EQ(sv.size(), 10u);
  double sq = 0.0;
  for (double s : sv) sq += s * s;
  EXPECT_NEAR(std::sqrt(sq), m.FrobeniusNorm(), 1e-8);
  // Descending order.
  for (std::size_t i = 1; i < sv.size(); ++i) {
    EXPECT_GE(sv[i - 1], sv[i] - 1e-12);
  }
}

TEST(SingularValuesTest, TallAndWideAgree) {
  common::Rng rng(4);
  Matrix m(6, 15);
  FillGaussian(m, rng, 1.0);
  const auto sv_wide = SingularValues(m);
  const auto sv_tall = SingularValues(m.Transposed());
  ASSERT_EQ(sv_wide.size(), sv_tall.size());
  for (std::size_t i = 0; i < sv_wide.size(); ++i) {
    EXPECT_NEAR(sv_wide[i], sv_tall[i], 1e-8);
  }
}

TEST(SingularValuesTest, ExactLowRankMatrix) {
  // rank-2 matrix: outer products.
  common::Rng rng(5);
  Matrix u(8, 2), v(2, 12);
  FillGaussian(u, rng, 1.0);
  FillGaussian(v, rng, 1.0);
  const Matrix m = u.Multiply(v);
  const auto sv = SingularValues(m);
  ASSERT_EQ(sv.size(), 8u);
  EXPECT_GT(sv[1], 1e-6);
  for (std::size_t i = 2; i < sv.size(); ++i) {
    EXPECT_NEAR(sv[i], 0.0, 1e-7 * sv[0]);
  }
}

TEST(NormalizedSingularValuesTest, TopIsOne) {
  common::Rng rng(6);
  Matrix m(5, 9);
  FillGaussian(m, rng, 2.0);
  const auto sv = NormalizedSingularValues(m);
  ASSERT_FALSE(sv.empty());
  EXPECT_DOUBLE_EQ(sv[0], 1.0);
  for (double s : sv) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-12);
  }
}

TEST(NormalizedSingularValuesTest, ZeroMatrixEmpty) {
  Matrix m(3, 3);
  EXPECT_TRUE(NormalizedSingularValues(m).empty());
}

TEST(EffectiveRankTest, LowRankDetected) {
  common::Rng rng(7);
  Matrix u(10, 3), v(3, 20);
  FillGaussian(u, rng, 1.0);
  FillGaussian(v, rng, 1.0);
  const Matrix m = u.Multiply(v);
  EXPECT_EQ(EffectiveRank(m, 1e-6), 3u);
}

TEST(SingularValuesTest, EmptyMatrix) {
  EXPECT_TRUE(SingularValues(Matrix()).empty());
}

}  // namespace
}  // namespace amf::linalg

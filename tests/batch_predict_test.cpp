// Equivalence tests for the batched prediction path: every batch API must
// reproduce its scalar counterpart entry for entry (1e-12 relative), the
// SIMD-friendly kernels must match their scalar reference oracles, and
// the fused SGD pair step must be bit-identical to the pre-refactor
// update loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/rng.h"
#include "core/amf_model.h"
#include "eval/ranking.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "transform/qos_transform.h"

namespace amf {
namespace {

constexpr double kRelTol = 1e-12;

void ExpectClose(double got, double want, const char* what) {
  const double scale = std::max(1.0, std::abs(want));
  EXPECT_NEAR(got, want, kRelTol * scale) << what;
}

/// A small model warmed with deterministic pseudo-random observations.
core::AmfModel TrainedModel(std::size_t users = 12, std::size_t services = 37,
                            std::uint64_t seed = 11) {
  core::AmfModel model(core::MakeResponseTimeConfig(seed));
  model.EnsureUser(static_cast<data::UserId>(users - 1));
  model.EnsureService(static_cast<data::ServiceId>(services - 1));
  common::Rng rng(seed);
  for (int i = 0; i < 800; ++i) {
    const auto u = static_cast<data::UserId>(rng.Index(users));
    const auto s = static_cast<data::ServiceId>(rng.Index(services));
    model.OnlineUpdate(u, s, rng.Uniform(0.05, 10.0));
  }
  return model;
}

TEST(BatchPredictTest, RowMatchesScalarNormalized) {
  const core::AmfModel model = TrainedModel();
  std::vector<double> row(model.num_services());
  for (data::UserId u = 0; u < model.num_users(); ++u) {
    model.PredictRowNormalized(u, row);
    for (data::ServiceId s = 0; s < model.num_services(); ++s) {
      ExpectClose(row[s], model.PredictNormalized(u, s), "normalized row");
    }
  }
}

TEST(BatchPredictTest, RowMatchesScalarRaw) {
  const core::AmfModel model = TrainedModel();
  std::vector<double> row(model.num_services());
  for (data::UserId u = 0; u < model.num_users(); ++u) {
    model.PredictRowRaw(u, row);
    for (data::ServiceId s = 0; s < model.num_services(); ++s) {
      ExpectClose(row[s], model.PredictRaw(u, s), "raw row");
    }
  }
}

TEST(BatchPredictTest, PartialRowAndGatherMatchScalar) {
  const core::AmfModel model = TrainedModel();
  // Prefix row.
  std::vector<double> prefix(model.num_services() / 2);
  model.PredictRowRaw(3, prefix);
  for (std::size_t s = 0; s < prefix.size(); ++s) {
    ExpectClose(prefix[s], model.PredictRaw(3, static_cast<data::ServiceId>(s)),
                "prefix row");
  }
  // Scattered gather with duplicates and reversed order.
  const std::vector<data::ServiceId> ids = {36, 0, 17, 17, 5, 36, 1};
  std::vector<double> got(ids.size());
  model.PredictManyRaw(3, ids, got);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ExpectClose(got[i], model.PredictRaw(3, ids[i]), "gather");
  }
}

TEST(BatchPredictTest, MatrixMatchesScalar) {
  const core::AmfModel model = TrainedModel();
  linalg::Matrix out;
  model.PredictMatrixRaw(&out);
  ASSERT_EQ(out.rows(), model.num_users());
  ASSERT_EQ(out.cols(), model.num_services());
  for (data::UserId u = 0; u < model.num_users(); ++u) {
    for (data::ServiceId s = 0; s < model.num_services(); ++s) {
      ExpectClose(out(u, s), model.PredictRaw(u, s), "matrix");
    }
  }
}

TEST(BatchPredictTest, PredictSamplesRawMatchesScalar) {
  const core::AmfModel model = TrainedModel();
  common::Rng rng(5);
  std::vector<data::QoSSample> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(
        {0, static_cast<data::UserId>(rng.Index(model.num_users())),
         static_cast<data::ServiceId>(rng.Index(model.num_services())), 1.0,
         0.0});
  }
  const std::vector<double> got = core::PredictSamplesRaw(model, samples);
  ASSERT_EQ(got.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ExpectClose(got[i], model.PredictRaw(samples[i].user, samples[i].service),
                "samples");
  }
}

TEST(BatchPredictTest, GrowthPreservesExistingFactors) {
  core::AmfModel model = TrainedModel();
  std::vector<double> before(model.num_services());
  for (data::ServiceId s = 0; s < model.num_services(); ++s) {
    before[s] = model.PredictRaw(2, s);
  }
  // Grow both sides well past the geometric-reserve threshold.
  model.EnsureUser(200);
  model.EnsureService(900);
  for (std::size_t s = 0; s < before.size(); ++s) {
    EXPECT_EQ(before[s], model.PredictRaw(2, static_cast<data::ServiceId>(s)))
        << "growth must not disturb existing factors";
  }
}

// --- Kernel oracles --------------------------------------------------------

TEST(KernelTest, SgdPairStepBitIdenticalToReference) {
  common::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t d = 1 + rng.Index(40);
    std::vector<double> u(d), s(d);
    for (std::size_t k = 0; k < d; ++k) {
      u[k] = rng.Uniform(-2.0, 2.0);
      s[k] = rng.Uniform(-2.0, 2.0);
    }
    std::vector<double> u_ref = u, s_ref = s;
    const double coef = rng.Uniform(-1.0, 1.0);
    const double cu = rng.Uniform(0.0, 0.9);
    const double cs = rng.Uniform(0.0, 0.9);
    linalg::SgdPairStep(u, s, coef, cu, cs, 0.001, 0.001);
    linalg::reference::SgdPairStep(u_ref, s_ref, coef, cu, cs, 0.001, 0.001);
    for (std::size_t k = 0; k < d; ++k) {
      // Bit-exact: the fused kernel must replay the pre-refactor loop.
      EXPECT_EQ(u[k], u_ref[k]) << "trial " << trial << " k " << k;
      EXPECT_EQ(s[k], s_ref[k]) << "trial " << trial << " k " << k;
    }
  }
}

TEST(KernelTest, GemvMatchesReference) {
  common::Rng rng(9);
  for (const std::size_t rows : {0u, 1u, 3u, 4u, 7u, 64u, 101u}) {
    for (const std::size_t d : {1u, 2u, 10u, 32u, 33u}) {
      std::vector<double> x(d), block(rows * d), got(rows), want(rows);
      for (double& v : x) v = rng.Uniform(-1.0, 1.0);
      for (double& v : block) v = rng.Uniform(-1.0, 1.0);
      linalg::GemvRowMajor(x, block, got);
      linalg::reference::GemvRowMajor(x, block, want);
      for (std::size_t i = 0; i < rows; ++i) {
        ExpectClose(got[i], want[i], "gemv");
      }
    }
  }
}

TEST(KernelTest, DotAxpyMatchReference) {
  common::Rng rng(13);
  for (const std::size_t d : {0u, 1u, 3u, 4u, 10u, 65u}) {
    std::vector<double> a(d), b(d);
    for (std::size_t k = 0; k < d; ++k) {
      a[k] = rng.Uniform(-3.0, 3.0);
      b[k] = rng.Uniform(-3.0, 3.0);
    }
    ExpectClose(linalg::Dot(a, b), linalg::reference::Dot(a, b), "dot");
    std::vector<double> y = b, y_ref = b;
    linalg::Axpy(0.37, a, y);
    linalg::reference::Axpy(0.37, a, y_ref);
    for (std::size_t k = 0; k < d; ++k) ExpectClose(y[k], y_ref[k], "axpy");
  }
}

TEST(KernelTest, ExpRowMatchesStdExp) {
  std::vector<double> x;
  for (double v = -700.0; v <= 700.0; v += 0.37) x.push_back(v);
  x.insert(x.end(), {-0.0, 0.0, 1.0, -1.0, 1e-17, -1e-17});
  std::vector<double> out(x.size());
  transform::ExpRow(x, out);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double want = std::exp(x[i]);
    EXPECT_NEAR(out[i], want, kRelTol * std::max(want, 1e-300)) << x[i];
  }
  // Saturation instead of overflow/underflow outside [-708, 708].
  std::vector<double> extreme = {-1e9, 1e9};
  std::vector<double> eout(2);
  transform::ExpRow(extreme, eout);
  EXPECT_GT(eout[0], 0.0);
  EXPECT_TRUE(std::isfinite(eout[1]));
}

TEST(KernelTest, LogRowMatchesStdLog) {
  std::vector<double> x;
  for (double v = 1e-300; v < 1e300; v *= 3.7) x.push_back(v);
  for (double v = 0.5; v < 2.0; v += 1e-3) x.push_back(v);
  std::vector<double> out(x.size());
  transform::LogRow(x, out);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double want = std::log(x[i]);
    EXPECT_NEAR(out[i], want, kRelTol * std::max(1.0, std::abs(want))) << x[i];
  }
}

TEST(KernelTest, SigmoidRowMatchesScalarSigmoid) {
  std::vector<double> x;
  for (double v = -40.0; v <= 40.0; v += 0.013) x.push_back(v);
  std::vector<double> out(x.size());
  transform::SigmoidRow(x, out);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(out[i], transform::Sigmoid(x[i]), kRelTol) << x[i];
  }
}

TEST(KernelTest, InverseRowMatchesScalarInverse) {
  for (const double alpha : {-0.007, -0.05, 0.0, 1.0}) {
    transform::QoSTransformConfig cfg;
    cfg.alpha = alpha;
    cfg.r_max = alpha == -0.05 ? 7000.0 : 20.0;
    const transform::QoSTransform t(cfg);
    std::vector<double> r;
    for (double g = -0.2; g <= 1.2; g += 1e-3) r.push_back(g);  // incl. clamps
    std::vector<double> batch = r;
    t.InverseRow(batch);
    for (std::size_t i = 0; i < r.size(); ++i) {
      const double want = t.Inverse(r[i]);
      EXPECT_NEAR(batch[i], want, kRelTol * std::max(1.0, std::abs(want)))
          << "alpha " << alpha << " r " << r[i];
    }
  }
}

// --- Consumers -------------------------------------------------------------

TEST(BatchPredictTest, TopKMatchesFullRankingPrefix) {
  common::Rng rng(21);
  std::vector<double> values(300);
  for (double& v : values) v = rng.Uniform(0.0, 10.0);
  values[7] = values[31];  // force a tie
  for (const bool smaller : {true, false}) {
    const std::vector<std::size_t> full = eval::RankByValue(values, smaller);
    for (const std::size_t k : {0u, 1u, 10u, 299u, 300u, 1000u}) {
      const std::vector<std::size_t> top =
          eval::TopKByValue(values, k, smaller);
      ASSERT_EQ(top.size(), std::min<std::size_t>(k, values.size()));
      for (std::size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i], full[i]) << "k " << k << " i " << i;
      }
    }
  }
}

TEST(BatchPredictTest, PredictQoSRowHandlesUnknownEntities) {
  adapt::QoSPredictionService svc;
  const data::UserId u = svc.RegisterUser("u0");
  const data::ServiceId s0 = svc.RegisterService("s0");
  const data::ServiceId s1 = svc.RegisterService("s1");
  for (int i = 0; i < 30; ++i) {
    svc.ReportObservation({0, u, i % 2 == 0 ? s0 : s1, 0.5 + 0.01 * i,
                           static_cast<double>(i)});
  }
  svc.Tick(40.0);

  const data::ServiceId unknown = 999;
  const std::vector<data::ServiceId> cands = {s0, unknown, s1};
  std::vector<double> values(cands.size());
  std::vector<double> unc(cands.size());
  ASSERT_TRUE(svc.PredictQoSRow(u, cands, values, unc));
  ExpectClose(values[0], *svc.PredictQoS(u, s0), "row vs scalar service 0");
  ExpectClose(values[2], *svc.PredictQoS(u, s1), "row vs scalar service 1");
  EXPECT_TRUE(std::isnan(values[1]));
  EXPECT_TRUE(std::isnan(unc[1]));
  EXPECT_GE(unc[0], 0.0);

  // Unknown user: false, everything NaN.
  EXPECT_FALSE(svc.PredictQoSRow(77, cands, values, {}));
  for (const double v : values) EXPECT_TRUE(std::isnan(v));
}

}  // namespace
}  // namespace amf

#include "core/parallel_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/statistics.h"
#include "core/online_trainer.h"
#include "tests/test_util.h"

namespace amf::core {
namespace {

AmfModel RegisteredModel(std::size_t users, std::size_t services,
                         std::uint64_t seed = 2) {
  AmfModel m(MakeResponseTimeConfig(seed));
  m.EnsureUser(static_cast<data::UserId>(users - 1));
  m.EnsureService(static_cast<data::ServiceId>(services - 1));
  return m;
}

TEST(ParallelTrainerTest, UnregisteredEntityCheckedInDebug) {
  // Registration is enforced with AMF_DCHECK: it throws in debug builds
  // and is compiled out (with whatever fallout unregistered ids cause)
  // in NDEBUG builds, keeping the scan off the release replay path.
  AmfModel m(MakeResponseTimeConfig(1));
  ParallelReplayTrainer trainer(m);
  const std::vector<data::QoSSample> samples = {{0, 5, 5, 1.0, 0.0}};
#ifndef NDEBUG
  EXPECT_THROW(trainer.ReplayEpoch(samples), common::CheckError);
#else
  GTEST_SKIP() << "registration scan is debug-only (AMF_DCHECK)";
#endif
}

TEST(ParallelTrainerTest, EmptySampleSetThrows) {
  AmfModel m = RegisteredModel(2, 2);
  ParallelReplayTrainer trainer(m);
  EXPECT_THROW(trainer.ReplayEpoch({}), common::CheckError);
}

TEST(ParallelTrainerTest, EpochAppliesEverySampleOnce) {
  AmfModel m = RegisteredModel(4, 8);
  ParallelReplayTrainer trainer(m);
  std::vector<data::QoSSample> samples;
  for (data::UserId u = 0; u < 4; ++u) {
    for (data::ServiceId s = 0; s < 8; ++s) {
      samples.push_back({0, u, s, 0.5 + 0.1 * u, 0.0});
    }
  }
  trainer.ReplayEpoch(samples);
  EXPECT_EQ(m.updates(), samples.size());
  trainer.ReplayEpoch(samples);
  EXPECT_EQ(m.updates(), 2 * samples.size());
}

TEST(ParallelTrainerTest, ConvergesLikeSerialTrainer) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 90, 5);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  const std::vector<data::QoSSample> samples = split.train.ToSamples();

  // Parallel (4 threads).
  AmfModel par_model = RegisteredModel(30, 90, 3);
  ParallelReplayConfig pcfg;
  pcfg.threads = 4;
  pcfg.seed = 11;
  ParallelReplayTrainer par(par_model, pcfg);
  par.ReplayUntilConverged(samples);

  // Serial reference.
  AmfModel ser_model = RegisteredModel(30, 90, 3);
  TrainerConfig scfg;
  scfg.expiry_seconds = 0.0;
  OnlineTrainer ser(ser_model, scfg);
  for (const auto& s : samples) ser.Observe(s);
  ser.RunUntilConverged();

  auto mre = [&](const AmfModel& m) {
    std::vector<double> rel;
    for (const auto& s : split.test) {
      rel.push_back(std::abs(m.PredictRaw(s.user, s.service) - s.value) /
                    s.value);
    }
    return common::Median(rel);
  };
  const double par_mre = mre(par_model);
  const double ser_mre = mre(ser_model);
  EXPECT_TRUE(std::isfinite(par_mre));
  // Not bitwise equal (different interleavings) but the same quality.
  EXPECT_LT(par_mre, 1.3 * ser_mre + 0.05);
  EXPECT_LT(par_mre, 0.6);
}

TEST(ParallelTrainerTest, ErrorDecreasesOverEpochs) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 60, 7);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  const std::vector<data::QoSSample> samples = split.train.ToSamples();
  AmfModel m = RegisteredModel(20, 60, 4);
  ParallelReplayConfig cfg;
  cfg.threads = 2;
  ParallelReplayTrainer trainer(m, cfg);
  const double first = trainer.ReplayEpoch(samples);
  double last = first;
  for (int e = 0; e < 10; ++e) last = trainer.ReplayEpoch(samples);
  EXPECT_LT(last, first);
  EXPECT_DOUBLE_EQ(trainer.last_epoch_error(), last);
}

TEST(ParallelTrainerTest, ModelStateStaysFinite) {
  AmfModel m = RegisteredModel(10, 20, 6);
  ParallelReplayConfig cfg;
  cfg.threads = 4;
  cfg.stripes = 4;  // force contention
  ParallelReplayTrainer trainer(m, cfg);
  common::Rng rng(9);
  std::vector<data::QoSSample> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back({0, static_cast<data::UserId>(rng.Index(10)),
                       static_cast<data::ServiceId>(rng.Index(20)),
                       rng.LogNormal(-0.2, 1.0), 0.0});
  }
  for (int e = 0; e < 5; ++e) trainer.ReplayEpoch(samples);
  for (data::UserId u = 0; u < 10; ++u) {
    for (data::ServiceId s = 0; s < 20; ++s) {
      ASSERT_TRUE(std::isfinite(m.PredictRaw(u, s)));
    }
  }
}

}  // namespace
}  // namespace amf::core

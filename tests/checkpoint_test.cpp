#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/crc32.h"
#include "core/online_trainer.h"
#include "obs/metrics.h"

namespace amf::core {
namespace {

namespace fs = std::filesystem;

AmfModel TrainedModel() {
  AmfModel m(MakeResponseTimeConfig(/*seed=*/17));
  for (int i = 0; i < 300; ++i) {
    m.OnlineUpdate(i % 5, i % 9, 0.4 + 0.3 * (i % 4));
  }
  return m;
}

SampleStore FilledStore() {
  SampleStore store;
  store.Upsert({0, 1, 2, 1.25, 30.0});
  store.Upsert({0, 3, 4, 0.5, 45.0});
  store.Upsert({1, 0, 0, 2.0, 60.0});
  return store;
}

std::string Serialized(const AmfModel& model, const SampleStore& store,
                       double now, double err) {
  std::stringstream ss;
  WriteCheckpoint(ss, model, store, now, err);
  return ss.str();
}

void ExpectModelsEqual(const AmfModel& a, const AmfModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_services(), b.num_services());
  for (data::UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_DOUBLE_EQ(a.UserError(u), b.UserError(u));
    for (data::ServiceId s = 0; s < a.num_services(); ++s) {
      EXPECT_DOUBLE_EQ(a.PredictRaw(u, s), b.PredictRaw(u, s));
    }
  }
}

/// Fresh scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ckpt_test_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(CheckpointTest, StreamRoundTripPreservesEverything) {
  const AmfModel model = TrainedModel();
  const SampleStore store = FilledStore();
  std::stringstream ss;
  WriteCheckpoint(ss, model, store, 123.5, 0.25);
  const CheckpointData data = ReadCheckpoint(ss);

  ExpectModelsEqual(model, data.model);
  EXPECT_EQ(data.store.size(), store.size());
  const auto sample = data.store.Get(1, 2);
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(sample->value, 1.25);
  EXPECT_DOUBLE_EQ(sample->timestamp, 30.0);
  EXPECT_DOUBLE_EQ(data.now, 123.5);
  EXPECT_DOUBLE_EQ(data.last_epoch_error, 0.25);
}

TEST(CheckpointTest, NanEpochErrorRoundTrips) {
  // A trainer that has not finished an epoch reports NaN; the format must
  // carry it (istream >> does not parse "nan" portably).
  const AmfModel model = TrainedModel();
  std::stringstream ss;
  WriteCheckpoint(ss, model, SampleStore{}, 0.0,
                  std::numeric_limits<double>::quiet_NaN());
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_TRUE(std::isnan(data.last_epoch_error));
}

TEST(CheckpointTest, BitFlipInPayloadIsDetected) {
  std::string text = Serialized(TrainedModel(), FilledStore(), 10.0, 0.1);
  // Payload starts after the two header lines.
  const std::size_t payload = text.find('\n', text.find('\n') + 1) + 1;
  ASSERT_LT(payload + 10, text.size());
  text[payload + 10] ^= 0x04;  // keep it printable-ish; CRC must still trip
  std::stringstream ss(text);
  EXPECT_THROW(ReadCheckpoint(ss), common::CheckError);
}

TEST(CheckpointTest, TruncationIsDetectedAtEveryBoundary) {
  const std::string text =
      Serialized(TrainedModel(), FilledStore(), 10.0, 0.1);
  const std::size_t samples_at = text.find("AMF_SAMPLES");
  const std::size_t trainer_at = text.find("AMF_TRAINER");
  ASSERT_NE(samples_at, std::string::npos);
  ASSERT_NE(trainer_at, std::string::npos);
  // Mid-model, exactly at each section boundary, and one byte short.
  for (const std::size_t cut : {text.size() / 2, samples_at, trainer_at,
                                text.size() - 1}) {
    std::stringstream ss(text.substr(0, cut));
    EXPECT_THROW(ReadCheckpoint(ss), common::CheckError) << "cut=" << cut;
  }
}

TEST(CheckpointTest, GarbageHeaderThrows) {
  std::stringstream ss("DEFINITELY_NOT_A_CHECKPOINT\n");
  EXPECT_THROW(ReadCheckpoint(ss), common::CheckError);
}

TEST(CheckpointTest, FileRoundTripIsAtomicallyWritten) {
  const std::string dir = ScratchDir("file_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/one.amfck";
  const AmfModel model = TrainedModel();
  WriteCheckpointFile(path, model, FilledStore(), 77.0, 0.5);
  // No temp file left behind.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u);
  const CheckpointData data = ReadCheckpointFile(path);
  ExpectModelsEqual(model, data.model);
  EXPECT_DOUBLE_EQ(data.now, 77.0);
}

TEST(CheckpointManagerTest, RetentionPrunesOldest) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("retention");
  cfg.retention = 3;
  CheckpointManager mgr(cfg);
  const AmfModel model = TrainedModel();
  for (int i = 0; i < 5; ++i) {
    mgr.Save(model, SampleStore{}, 10.0 * (i + 1), 0.1);
  }
  const std::vector<std::string> files = mgr.List();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(mgr.written(), 5u);
  // The newest one carries the latest clock.
  const CheckpointData data = ReadCheckpointFile(files.back());
  EXPECT_DOUBLE_EQ(data.now, 50.0);
}

TEST(CheckpointManagerTest, LoadLatestValidSkipsCorruptNewest) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("fallback");
  CheckpointManager mgr(cfg);
  const AmfModel model = TrainedModel();
  mgr.Save(model, FilledStore(), 100.0, 0.1);
  const std::string newest = mgr.Save(model, FilledStore(), 200.0, 0.1);
  // Hand-truncate the newest checkpoint (simulated torn write / bad disk).
  fs::resize_file(newest, fs::file_size(newest) / 2);

  const std::optional<CheckpointData> data = mgr.LoadLatestValid();
  ASSERT_TRUE(data.has_value());
  EXPECT_DOUBLE_EQ(data->now, 100.0);  // fell back to the previous one
  EXPECT_EQ(mgr.corrupt_skipped(), 1u);
}

TEST(CheckpointManagerTest, LoadLatestValidEmptyDirectory) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("empty");
  CheckpointManager mgr(cfg);
  EXPECT_FALSE(mgr.LoadLatestValid().has_value());
}

TEST(CheckpointManagerTest, SequenceContinuesAfterRestart) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("restart");
  const AmfModel model = TrainedModel();
  {
    CheckpointManager mgr(cfg);
    mgr.Save(model, SampleStore{}, 1.0, 0.1);
    mgr.Save(model, SampleStore{}, 2.0, 0.1);
  }
  // A new manager over the same directory must not overwrite history.
  CheckpointManager mgr(cfg);
  mgr.Save(model, SampleStore{}, 3.0, 0.1);
  const std::vector<std::string> files = mgr.List();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_DOUBLE_EQ(ReadCheckpointFile(files.back()).now, 3.0);
  EXPECT_DOUBLE_EQ(ReadCheckpointFile(files.front()).now, 1.0);
}

TEST(CheckpointManagerTest, MaybeSaveIsIntervalGated) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("interval");
  cfg.interval_seconds = 100.0;
  CheckpointManager mgr(cfg);
  const AmfModel model = TrainedModel();
  EXPECT_TRUE(mgr.MaybeSave(model, SampleStore{}, 0.0, 0.1));   // first
  EXPECT_FALSE(mgr.MaybeSave(model, SampleStore{}, 50.0, 0.1));  // too soon
  EXPECT_TRUE(mgr.MaybeSave(model, SampleStore{}, 150.0, 0.1));
  EXPECT_EQ(mgr.written(), 2u);
}

TEST(CheckpointManagerTest, LoadCheckpointOrFallback) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("preferred");
  CheckpointManager mgr(cfg);
  const AmfModel model = TrainedModel();
  mgr.Save(model, SampleStore{}, 42.0, 0.1);

  // Preferred path missing -> manager's newest valid.
  std::optional<CheckpointData> data =
      LoadCheckpointOrFallback(cfg.directory + "/nope.amfck", mgr);
  ASSERT_TRUE(data.has_value());
  EXPECT_DOUBLE_EQ(data->now, 42.0);

  // Preferred path corrupt -> same fallback.
  const std::string bad = cfg.directory + "/bad.amfck";
  std::ofstream(bad) << "AMF_CKPT 1\nbytes 10 crc32 0\ngarbage";
  data = LoadCheckpointOrFallback(bad, mgr);
  ASSERT_TRUE(data.has_value());
  EXPECT_DOUBLE_EQ(data->now, 42.0);
}

TEST(CheckpointManagerTest, MetricsCountWritesBytesAndRestores) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("metrics");
  CheckpointManager mgr(cfg);
  obs::MetricsRegistry registry;
  mgr.AttachMetrics(&registry);
  const AmfModel model = TrainedModel();
  const std::string newest = mgr.Save(model, FilledStore(), 100.0, 0.1);
  mgr.Save(model, FilledStore(), 200.0, 0.1);

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("checkpoint.writes"), 2u);
  EXPECT_EQ(snap.CounterValue("checkpoint.write_failures"), 0u);
  EXPECT_GE(snap.CounterValue("checkpoint.bytes_written"),
            2 * fs::file_size(newest) / 2);  // two similar-size files
  const obs::HistogramSnapshot* writes =
      snap.FindHistogram("checkpoint.write_seconds");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(writes->total, 2u);

  // A corrupt newest checkpoint is counted on restore, and the restore
  // latency lands in its histogram.
  fs::resize_file(mgr.List().back(), 10);
  ASSERT_TRUE(mgr.LoadLatestValid().has_value());
  snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("checkpoint.corrupt_skipped"), 1u);
  const obs::HistogramSnapshot* restores =
      snap.FindHistogram("checkpoint.restore_seconds");
  ASSERT_NE(restores, nullptr);
  EXPECT_EQ(restores->total, 1u);
}

TEST(CheckpointManagerTest, RestoreThenEarlierTimestampDoesNotAbort) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("clock_regression");
  CheckpointManager mgr(cfg);
  AmfModel model = TrainedModel();
  mgr.Save(model, FilledStore(), 1000.0, 0.1);

  // Recovery path: a restored trainer adopts the checkpoint clock, then
  // the wall clock turns out to be behind it (NTP step, clock skew). The
  // trainer must clamp and count, not crash the freshly restored process.
  const std::optional<CheckpointData> data = mgr.LoadLatestValid();
  ASSERT_TRUE(data.has_value());
  AmfModel restored = data->model;
  OnlineTrainer trainer(restored);
  trainer.AdvanceTime(data->now);
  ASSERT_DOUBLE_EQ(trainer.now(), 1000.0);
  EXPECT_NO_THROW(trainer.AdvanceTime(250.0));
  EXPECT_DOUBLE_EQ(trainer.now(), 1000.0);
  EXPECT_EQ(trainer.Stats().clock_regressions, 1u);
  // The pipeline keeps running: later real time still advances the clock.
  trainer.AdvanceTime(1500.0);
  EXPECT_DOUBLE_EQ(trainer.now(), 1500.0);
}

CheckpointRegistries TestRegistries() {
  CheckpointRegistries regs;
  regs.users.names = {"alice", "", "carol"};
  regs.users.states = {0 /*active*/, 2 /*free*/, 1 /*departed*/};
  regs.users.generations = {0, 3, 1};
  regs.users.free_list = {1};
  regs.users.recycled_total = 5;
  regs.services.names = {"weather"};
  regs.services.states = {0};
  regs.services.generations = {0};
  regs.services.recycled_total = 0;
  return regs;
}

TEST(CheckpointTest, RegistrySectionRoundTrips) {
  const CheckpointRegistries regs = TestRegistries();
  std::stringstream ss;
  WriteCheckpoint(ss, TrainedModel(), FilledStore(), 10.0, 0.1, &regs);
  const CheckpointData data = ReadCheckpoint(ss);
  ASSERT_TRUE(data.registries.has_value());
  EXPECT_EQ(data.registries->users, regs.users);
  EXPECT_EQ(data.registries->services, regs.services);
}

TEST(CheckpointTest, WriterWithoutRegistriesYieldsNullopt) {
  std::stringstream ss;
  WriteCheckpoint(ss, TrainedModel(), FilledStore(), 10.0, 0.1);
  EXPECT_EQ(ss.str().find("AMF_REGISTRIES"), std::string::npos);
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_FALSE(data.registries.has_value());
}

TEST(CheckpointTest, V1HeaderStillLoads) {
  // A pre-registry checkpoint differs only in the header version (the
  // version is outside the CRC-covered payload).
  std::string text = Serialized(TrainedModel(), FilledStore(), 10.0, 0.1);
  const std::size_t at = text.find("AMF_CKPT 3");
  ASSERT_NE(at, std::string::npos);
  text[at + 9] = '1';
  std::stringstream ss(text);
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_DOUBLE_EQ(data.now, 10.0);
  EXPECT_FALSE(data.registries.has_value());
}

TEST(CheckpointTest, V2HeaderStillLoads) {
  const CheckpointRegistries regs = TestRegistries();
  std::stringstream full;
  WriteCheckpoint(full, TrainedModel(), FilledStore(), 10.0, 0.1, &regs);
  std::string text = full.str();
  const std::size_t at = text.find("AMF_CKPT 3");
  ASSERT_NE(at, std::string::npos);
  text[at + 9] = '2';
  std::stringstream ss(text);
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_DOUBLE_EQ(data.now, 10.0);
  ASSERT_TRUE(data.registries.has_value());
  EXPECT_FALSE(data.wal_watermark.has_value());
}

TEST(CheckpointTest, FutureVersionIsRejected) {
  std::string text = Serialized(TrainedModel(), FilledStore(), 10.0, 0.1);
  const std::size_t at = text.find("AMF_CKPT 3");
  ASSERT_NE(at, std::string::npos);
  text[at + 9] = '9';
  std::stringstream ss(text);
  EXPECT_THROW(ReadCheckpoint(ss), common::CheckError);
}

TEST(CheckpointTest, WalWatermarkRoundTrips) {
  const CheckpointRegistries regs = TestRegistries();
  const std::uint64_t watermark = 123456789;
  std::stringstream ss;
  WriteCheckpoint(ss, TrainedModel(), FilledStore(), 10.0, 0.1, &regs,
                  &watermark);
  const CheckpointData data = ReadCheckpoint(ss);
  ASSERT_TRUE(data.registries.has_value());
  ASSERT_TRUE(data.wal_watermark.has_value());
  EXPECT_EQ(*data.wal_watermark, watermark);
}

TEST(CheckpointTest, WalWatermarkWithoutRegistriesRoundTrips) {
  const std::uint64_t watermark = 7;
  std::stringstream ss;
  WriteCheckpoint(ss, TrainedModel(), FilledStore(), 10.0, 0.1, nullptr,
                  &watermark);
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_FALSE(data.registries.has_value());
  ASSERT_TRUE(data.wal_watermark.has_value());
  EXPECT_EQ(*data.wal_watermark, watermark);
}

TEST(CheckpointTest, WriterWithoutWatermarkYieldsNullopt) {
  const CheckpointRegistries regs = TestRegistries();
  std::stringstream ss;
  WriteCheckpoint(ss, TrainedModel(), FilledStore(), 10.0, 0.1, &regs);
  EXPECT_EQ(ss.str().find("AMF_WAL"), std::string::npos);
  const CheckpointData data = ReadCheckpoint(ss);
  EXPECT_FALSE(data.wal_watermark.has_value());
}

TEST(CheckpointTest, TruncationInsideRegistrySectionIsDetected) {
  const CheckpointRegistries regs = TestRegistries();
  std::stringstream full;
  WriteCheckpoint(full, TrainedModel(), FilledStore(), 10.0, 0.1, &regs);
  const std::string text = full.str();
  const std::size_t regs_at = text.find("AMF_REGISTRIES");
  ASSERT_NE(regs_at, std::string::npos);
  for (const std::size_t cut : {regs_at, regs_at + 20, text.size() - 1}) {
    std::stringstream ss(text.substr(0, cut));
    EXPECT_THROW(ReadCheckpoint(ss), common::CheckError) << "cut=" << cut;
  }
}

TEST(CheckpointManagerTest, ManagerPersistsRegistries) {
  CheckpointManagerConfig cfg;
  cfg.directory = ScratchDir("registries");
  CheckpointManager mgr(cfg);
  const CheckpointRegistries regs = TestRegistries();
  mgr.Save(TrainedModel(), FilledStore(), 50.0, 0.1, &regs);
  const std::optional<CheckpointData> data = mgr.LoadLatestValid();
  ASSERT_TRUE(data.has_value());
  ASSERT_TRUE(data->registries.has_value());
  EXPECT_EQ(data->registries->users, regs.users);
  EXPECT_EQ(data->registries->services, regs.services);
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(common::Crc32Of("123456789"), 0xCBF43926u);
  common::Crc32 streaming;
  streaming.Update("1234");
  streaming.Update("56789");
  EXPECT_EQ(streaming.value(), 0xCBF43926u);
  EXPECT_NE(common::Crc32Of("123456788"), common::Crc32Of("123456789"));
}

}  // namespace
}  // namespace amf::core

// Point-in-time recovery end to end (DESIGN.md §12): checkpoint watermark
// + journal replay through the normal validation/gating pipeline, bit-
// identity with an uncrashed control, duplicate-replay idempotence, the
// pre-v3 full-replay fallback with generation-gated rejection, and the
// shed-load conservation identity extended with journal drops.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "adapt/concurrent_service.h"
#include "adapt/prediction_service.h"
#include "core/checkpoint.h"
#include "core/online_trainer.h"
#include "stream/wal.h"

namespace amf::adapt {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/wal_recovery_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Deterministic service config: no replay epochs per tick, so applying
/// the same observation sequence is bit-reproducible (no RNG involved).
PredictionServiceConfig DeterministicConfig() {
  PredictionServiceConfig cfg{core::MakeResponseTimeConfig(/*seed=*/7),
                              core::TrainerConfig{}, 0};
  return cfg;
}

core::CheckpointManagerConfig CkptConfig(const std::string& dir) {
  core::CheckpointManagerConfig cfg;
  cfg.directory = dir;
  cfg.interval_seconds = 1e9;  // only the first Tick saves
  return cfg;
}

stream::JournalConfig WalConfig(const std::string& dir) {
  stream::JournalConfig cfg;
  cfg.directory = dir;
  cfg.fsync_policy = stream::FsyncPolicy::kAlways;
  return cfg;
}

void RegisterPopulation(QoSPredictionService& s, std::size_t users,
                        std::size_t services) {
  for (std::size_t u = 0; u < users; ++u) {
    s.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t v = 0; v < services; ++v) {
    s.RegisterService("s" + std::to_string(v));
  }
}

void ExpectModelsBitIdentical(const core::AmfModel& a,
                              const core::AmfModel& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_services(), b.num_services());
  for (data::UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.UserError(u), b.UserError(u)) << "u=" << u;
    const auto fa = a.UserFactors(u);
    const auto fb = b.UserFactors(u);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t k = 0; k < fa.size(); ++k) {
      EXPECT_EQ(fa[k], fb[k]) << "u=" << u << " k=" << k;  // bitwise
    }
  }
  for (data::ServiceId s = 0; s < a.num_services(); ++s) {
    EXPECT_EQ(a.ServiceError(s), b.ServiceError(s)) << "s=" << s;
    const auto fa = a.ServiceFactors(s);
    const auto fb = b.ServiceFactors(s);
    for (std::size_t k = 0; k < fa.size(); ++k) {
      EXPECT_EQ(fa[k], fb[k]) << "s=" << s << " k=" << k;
    }
  }
}

std::vector<data::QoSSample> PreCrashBatch() {
  return {{0, 0, 0, 0.5, 1.0},
          {0, 1, 1, 0.7, 2.0},
          {0, 2, 2, 0.9, 3.0},
          {0, 0, 1, 0.6, 4.0}};
}

std::vector<data::QoSSample> PostCheckpointBatch() {
  return {{0, 1, 0, 0.8, 11.0}, {0, 2, 1, 0.4, 12.0}, {0, 0, 2, 1.1, 13.0}};
}

TEST(WalRecoveryTest, RecoverReplaysOnlyPastWatermarkAndMatchesControl) {
  const std::string ck = ScratchDir("pit_ck");
  const std::string wal = ScratchDir("pit_wal");
  {
    QoSPredictionService a(DeterministicConfig());
    RegisterPopulation(a, 3, 3);
    a.EnableCheckpoints(CkptConfig(ck));
    a.EnableJournal(WalConfig(wal));
    for (const auto& s : PreCrashBatch()) a.ReportObservation(s);
    a.Tick(10.0);  // applies + checkpoints (watermark = 4)
    // Journaled and acknowledged, but the process "crashes" before any
    // Tick applies or checkpoints them: only the journal remembers.
    for (const auto& s : PostCheckpointBatch()) a.ReportObservation(s);
  }

  QoSPredictionService b(DeterministicConfig());
  b.EnableCheckpoints(CkptConfig(ck));
  b.EnableJournal(WalConfig(wal));
  const auto report = b.Recover();
  EXPECT_TRUE(report.checkpoint_restored);
  EXPECT_EQ(report.watermark, 4u);
  EXPECT_EQ(report.scanned, 3u);  // only LSNs 5..7
  EXPECT_EQ(report.replayed, 3u);
  EXPECT_EQ(report.rejected_generation, 0u);
  EXPECT_EQ(report.quarantined_segments, 0u);
  const core::PipelineStats stats = b.pipeline_stats();
  EXPECT_EQ(stats.journal_replayed, 3u);
  EXPECT_EQ(stats.journal_replay_rejected, 0u);

  // Uncrashed control: restore the same checkpoint, then feed the same
  // post-checkpoint observations through the ordinary ingest path.
  QoSPredictionService c(DeterministicConfig());
  c.EnableCheckpoints(CkptConfig(ck));
  ASSERT_TRUE(c.RestoreFromLatestCheckpoint());
  for (const auto& s : PostCheckpointBatch()) c.ReportObservation(s);
  c.Tick(13.0);

  ExpectModelsBitIdentical(b.model(), c.model());
  const auto p = b.PredictQoS(0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(std::isfinite(*p));
}

TEST(WalRecoveryTest, DuplicateReplayIsIdempotent) {
  const std::string ck = ScratchDir("dup_ck");
  const std::string wal = ScratchDir("dup_wal");
  {
    QoSPredictionService a(DeterministicConfig());
    RegisterPopulation(a, 3, 3);
    a.EnableCheckpoints(CkptConfig(ck));
    a.EnableJournal(WalConfig(wal));
    for (const auto& s : PreCrashBatch()) a.ReportObservation(s);
    a.Tick(10.0);
    for (const auto& s : PostCheckpointBatch()) a.ReportObservation(s);
  }

  QoSPredictionService once(DeterministicConfig());
  once.EnableCheckpoints(CkptConfig(ck));
  once.EnableJournal(WalConfig(wal));
  once.Recover();

  // Same recovery, then the whole journal is force-fed AGAIN through the
  // ingest path: the validator's duplicate gate must reject every record
  // (same (u,s,timestamp) keys), leaving the factors bit-identical.
  QoSPredictionService twice(DeterministicConfig());
  twice.EnableCheckpoints(CkptConfig(ck));
  twice.EnableJournal(WalConfig(wal));
  twice.Recover();
  const stream::JournalReadResult journal = stream::ReadJournal(wal);
  ASSERT_EQ(journal.records.size(), 7u);
  for (const stream::JournalRecord& r : journal.records) {
    twice.ReportObservation(r.sample);
  }
  twice.Tick(13.0);
  EXPECT_GE(twice.pipeline_stats().rejected_duplicate, 7u);

  ExpectModelsBitIdentical(once.model(), twice.model());
}

TEST(WalRecoveryTest, FallbackFullReplayRejectsRecycledGeneration) {
  const std::string ck = ScratchDir("gen_ck");
  const std::string wal = ScratchDir("gen_wal");
  core::CheckpointManagerConfig ckcfg = CkptConfig(ck);
  {
    QoSPredictionService a(DeterministicConfig());
    a.RegisterUser("alice");  // id 0, generation 0
    a.RegisterService("svc");
    a.EnableJournal(WalConfig(wal));
    a.ReportObservation({0, 0, 0, 0.5, 1.0});  // journaled under alice
    a.Tick(1.0);
    ASSERT_TRUE(a.RetireUser("alice"));
    ASSERT_EQ(a.RegisterUser("bob"), 0u);      // recycles id 0, generation 1
    a.ReportObservation({0, 0, 0, 0.9, 2.0});  // journaled under bob
    // Checkpoint WITHOUT a watermark (what a v1/v2 writer produces):
    // recovery must fall back to replaying the full journal.
    core::CheckpointManager mgr(ckcfg);
    const core::CheckpointRegistries regs{a.users().ToImage(),
                                          a.services().ToImage()};
    mgr.Save(a.model(), a.trainer().store(), 2.0, 0.1, &regs);
  }

  QoSPredictionService b(DeterministicConfig());
  b.EnableCheckpoints(ckcfg);
  b.EnableJournal(WalConfig(wal));
  const auto report = b.Recover();
  EXPECT_TRUE(report.checkpoint_restored);
  EXPECT_EQ(report.watermark, 0u);  // fallback: no watermark in the file
  EXPECT_EQ(report.scanned, 2u);
  // Alice's record carries generation 0 but slot 0 now belongs to bob
  // (generation 1): replaying it would train bob's factors with alice's
  // observation. Rejected, not misapplied.
  EXPECT_EQ(report.rejected_generation, 1u);
  EXPECT_EQ(report.replayed, 1u);
  EXPECT_EQ(b.pipeline_stats().journal_replay_rejected, 1u);
}

TEST(WalRecoveryTest, ConcurrentFacadeRecoverMatchesControlPredictions) {
  const std::string ck = ScratchDir("conc_ck");
  const std::string wal = ScratchDir("conc_wal");
  constexpr std::size_t kUsers = 4, kServices = 6;
  std::vector<data::QoSSample> phase1, phase2;
  for (std::uint32_t i = 0; i < 24; ++i) {
    phase1.push_back({0, i % kUsers, i % kServices,
                      0.3 + 0.01 * static_cast<double>(i),
                      static_cast<double>(i + 1)});
  }
  for (std::uint32_t i = 24; i < 36; ++i) {
    phase2.push_back({0, i % kUsers, i % kServices,
                      0.3 + 0.01 * static_cast<double>(i),
                      static_cast<double>(i + 1)});
  }
  const double t1 = 24.0, t2 = 36.0;

  {
    ConcurrentPredictionService a(DeterministicConfig());
    for (std::size_t u = 0; u < kUsers; ++u) {
      a.RegisterUser("u" + std::to_string(u));
    }
    for (std::size_t s = 0; s < kServices; ++s) {
      a.RegisterService("s" + std::to_string(s));
    }
    a.EnableCheckpoints(CkptConfig(ck));
    a.EnableJournal(WalConfig(wal));
    for (const auto& s : phase1) a.ReportObservation(s);
    a.Tick(t1);  // drain -> group-commit journal -> apply -> checkpoint
    for (const auto& s : phase2) a.ReportObservation(s);
    a.Tick(t2);  // journaled + applied, but NOT checkpointed (interval)
  }

  ConcurrentPredictionService b(DeterministicConfig());
  b.EnableCheckpoints(CkptConfig(ck));
  b.EnableJournal(WalConfig(wal));
  const auto report = b.Recover();
  EXPECT_TRUE(report.checkpoint_restored);
  EXPECT_EQ(report.watermark, phase1.size());
  EXPECT_EQ(report.replayed, phase2.size());

  ConcurrentPredictionService c(DeterministicConfig());
  c.EnableCheckpoints(CkptConfig(ck));
  ASSERT_TRUE(c.RestoreFromLatestCheckpoint());
  for (const auto& s : phase2) c.ReportObservation(s);
  c.Tick(t2);

  for (data::UserId u = 0; u < kUsers; ++u) {
    for (data::ServiceId s = 0; s < kServices; ++s) {
      const auto pb = b.PredictQoS(u, s);
      const auto pc = c.PredictQoS(u, s);
      ASSERT_EQ(pb.has_value(), pc.has_value());
      if (pb) {
        EXPECT_TRUE(std::isfinite(*pb));
        EXPECT_EQ(*pb, *pc) << "u=" << u << " s=" << s;  // bit-identical
      }
    }
  }
}

TEST(WalRecoveryTest, ConservationIdentityHoldsWithJournalDrops) {
  PredictionServiceConfig cfg = DeterministicConfig();
  ConcurrentPredictionService service(cfg, /*ring_capacity=*/8);
  stream::JournalConfig wal = WalConfig(ScratchDir("identity_wal"));
  wal.fsync_policy = stream::FsyncPolicy::kOs;
  wal.fail_appends_after = 4;  // the drain's group commit fails mid-batch
  service.EnableJournal(wal);

  constexpr std::size_t kTotal = 100;
  for (std::size_t i = 0; i < kTotal; ++i) {
    service.ReportObservation({0, static_cast<data::UserId>(i), 0, 1.0,
                               static_cast<double>(i)});
  }
  service.Tick(200.0);

  const core::PipelineStats stats = service.pipeline_stats();
  EXPECT_EQ(stats.ring_dropped, kTotal - 8);
  EXPECT_EQ(stats.journal_appended, 4u);
  EXPECT_EQ(stats.journal_dropped, 4u);  // 8 drained, hook capped at 4
  EXPECT_EQ(stats.accepted, 4u);
  // The extended conservation identity: every reported sample is
  // accounted exactly once across ring shed, journal shed, trainer-queue
  // shed, and the validator verdicts.
  EXPECT_EQ(stats.ring_dropped + stats.journal_dropped +
                stats.dropped_on_overflow + stats.seen(),
            kTotal);
  EXPECT_EQ(stats.dropped(), stats.ring_dropped + stats.dropped_on_overflow +
                                 stats.journal_dropped);
}

}  // namespace
}  // namespace amf::adapt

#include "transform/qos_transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "transform/normalizer.h"

namespace amf::transform {
namespace {

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-15);
}

TEST(SigmoidTest, NoOverflowAtExtremes) {
  EXPECT_TRUE(std::isfinite(Sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e6)));
}

TEST(SigmoidTest, SymmetricAroundZero) {
  for (double x : {0.3, 1.7, 4.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-14);
  }
}

TEST(SigmoidDerivativeTest, MatchesFiniteDifference) {
  for (double x : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    const double h = 1e-6;
    const double fd = (Sigmoid(x + h) - Sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(SigmoidDerivative(x), fd, 1e-8);
  }
}

TEST(LogitTest, InvertsSigmoid) {
  for (double x : {-4.0, -1.0, 0.0, 2.0, 5.0}) {
    EXPECT_NEAR(Logit(Sigmoid(x)), x, 1e-9);
  }
}

TEST(LogitTest, ClampsOutOfRange) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
  EXPECT_LT(Logit(0.0), 0.0);
  EXPECT_GT(Logit(1.0), 0.0);
}

TEST(LinearNormalizerTest, MapsBoundsToUnitInterval) {
  LinearNormalizer n(-2.0, 6.0);
  EXPECT_DOUBLE_EQ(n.Normalize(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(n.Normalize(6.0), 1.0);
  EXPECT_DOUBLE_EQ(n.Normalize(2.0), 0.5);
  EXPECT_DOUBLE_EQ(n.Denormalize(0.25), 0.0);
}

TEST(LinearNormalizerTest, RoundTrips) {
  LinearNormalizer n(0.5, 20.0);
  for (double x : {0.5, 1.0, 7.3, 20.0}) {
    EXPECT_NEAR(n.Denormalize(n.Normalize(x)), x, 1e-12);
  }
}

TEST(LinearNormalizerTest, DegenerateBoundsThrow) {
  EXPECT_THROW(LinearNormalizer(1.0, 1.0), common::CheckError);
  EXPECT_THROW(LinearNormalizer(2.0, 1.0), common::CheckError);
}

class QoSTransformParamTest
    : public ::testing::TestWithParam<double> {};  // alpha sweep

TEST_P(QoSTransformParamTest, ForwardStaysInUnitInterval) {
  QoSTransformConfig cfg;
  cfg.alpha = GetParam();
  cfg.r_max = 20.0;
  QoSTransform t(cfg);
  for (double raw : {0.0, 1e-4, 0.01, 0.5, 1.33, 10.0, 20.0, 100.0}) {
    const double r = t.Forward(raw);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST_P(QoSTransformParamTest, ForwardIsMonotone) {
  QoSTransformConfig cfg;
  cfg.alpha = GetParam();
  QoSTransform t(cfg);
  double prev = t.Forward(0.01);
  for (double raw = 0.02; raw < 20.0; raw *= 1.4) {
    const double cur = t.Forward(raw);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(QoSTransformParamTest, RoundTripInsideClampRange) {
  QoSTransformConfig cfg;
  cfg.alpha = GetParam();
  QoSTransform t(cfg);
  // Raw values chosen so the normalized value stays above the r-floor for
  // every alpha in the sweep (below it, Forward intentionally clamps).
  for (double raw : {0.05, 0.2, 1.33, 5.0, 19.0}) {
    EXPECT_NEAR(t.Inverse(t.Forward(raw)), raw, 1e-6 * std::max(1.0, raw))
        << "alpha=" << GetParam() << " raw=" << raw;
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, QoSTransformParamTest,
                         ::testing::Values(-0.05, -0.007, 0.0, 0.5, 1.0));

TEST(QoSTransformTest, ClampsBelowFloorAndAboveMax) {
  QoSTransform t(QoSTransformConfig{});
  EXPECT_DOUBLE_EQ(t.Forward(-5.0), t.Forward(0.0));
  EXPECT_DOUBLE_EQ(t.Forward(25.0), t.Forward(20.0));
  EXPECT_NEAR(t.Forward(20.0), 1.0, 1e-12);
}

TEST(QoSTransformTest, FloorKeepsRelativeLossFinite) {
  QoSTransform t(QoSTransformConfig{});
  const double r = t.Forward(0.0);  // raw at Rmin
  EXPECT_GT(r, 0.0);                // never exactly 0 -> 1/r finite
}

TEST(QoSTransformTest, PredictRawIsInverseOfSigmoid) {
  QoSTransform t(QoSTransformConfig{});
  for (double inner : {-3.0, 0.0, 2.0}) {
    EXPECT_NEAR(t.PredictRaw(inner), t.Inverse(Sigmoid(inner)), 1e-12);
  }
}

TEST(QoSTransformTest, PredictRawWithinValueRange) {
  QoSTransformConfig cfg;
  cfg.alpha = -0.05;
  cfg.r_max = 7000.0;
  QoSTransform t(cfg);
  for (double inner : {-50.0, -1.0, 0.0, 1.0, 50.0}) {
    const double v = t.PredictRaw(inner);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 7000.0 + 1e-9);
  }
}

TEST(QoSTransformTest, ThroughputConfigTransformsLargeValues) {
  QoSTransformConfig cfg;
  cfg.alpha = -0.05;
  cfg.r_max = 7000.0;
  cfg.value_floor = 0.01;
  QoSTransform t(cfg);
  const double r_small = t.Forward(1.0);
  const double r_big = t.Forward(5000.0);
  EXPECT_LT(r_small, r_big);
  EXPECT_NEAR(t.Inverse(r_big), 5000.0, 1.0);
}

TEST(QoSTransformTest, InvalidConfigThrows) {
  QoSTransformConfig bad;
  bad.r_max = 0.0;
  EXPECT_THROW(QoSTransform{bad}, common::CheckError);
  QoSTransformConfig bad2;
  bad2.value_floor = 0.0;
  EXPECT_THROW(QoSTransform{bad2}, common::CheckError);
}

TEST(QoSTransformTest, BoxCoxReducesSkew) {
  // Log-normal-ish sample: after the RT transform (alpha near 0) the
  // spread between median and mean should shrink dramatically relative to
  // the raw data (this is the point of Fig. 8).
  QoSTransformConfig cfg;
  cfg.alpha = -0.007;
  QoSTransform t(cfg);
  std::vector<double> raw = {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8};
  double raw_mean = 0, tr_mean = 0;
  for (double x : raw) {
    raw_mean += x;
    tr_mean += t.Forward(x);
  }
  raw_mean /= raw.size();
  tr_mean /= raw.size();
  const double raw_median = 0.8;
  const double tr_median = t.Forward(0.8);
  // Raw mean is far above the median; transformed mean is close to it.
  EXPECT_GT(raw_mean / raw_median, 3.0);
  EXPECT_NEAR(tr_mean, tr_median, 0.05);
}

}  // namespace
}  // namespace amf::transform

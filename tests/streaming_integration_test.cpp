// Long-run streaming properties: the trainer's sample store must stay
// bounded under continuous observation streams (expiration works), and
// the model must keep tracking the drifting ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "core/online_trainer.h"
#include "data/synthetic.h"
#include "stream/sample_stream.h"

namespace amf {
namespace {

data::SyntheticQoSDataset MakeDataset(std::size_t slices) {
  data::SyntheticConfig cfg;
  cfg.users = 30;
  cfg.services = 100;
  cfg.slices = slices;
  cfg.seed = 77;
  return data::SyntheticQoSDataset(cfg);
}

TEST(StreamingIntegrationTest, StoreStaysBoundedWithResampledPairs) {
  const auto dataset = MakeDataset(10);
  stream::StreamConfig scfg;
  scfg.density = 0.1;
  scfg.resample_pairs_each_slice = true;  // new pairs every slice
  scfg.seed = 3;
  const stream::SampleStream stream(dataset, scfg);

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::TrainerConfig tcfg;
  tcfg.expiry_seconds = 900.0;
  core::OnlineTrainer trainer(model, tcfg);

  const std::size_t per_slice = stream.Slice(0).size();
  for (data::SliceId t = 0; t < 10; ++t) {
    trainer.AdvanceTime(dataset.SliceTimestamp(t));
    for (const auto& s : stream.Slice(t)) trainer.Observe(s);
    trainer.RunUntilConverged();
    // Replay purges expired samples; with a 1-slice window the store can
    // never hold much more than ~2 slices of distinct pairs.
    EXPECT_LE(trainer.store().size(), 5 * per_slice / 2)
        << "slice " << t;
  }
}

TEST(StreamingIntegrationTest, OldSamplesEventuallyPurged) {
  const auto dataset = MakeDataset(6);
  stream::StreamConfig scfg;
  scfg.density = 0.1;
  scfg.resample_pairs_each_slice = true;
  scfg.seed = 9;
  const stream::SampleStream stream(dataset, scfg);

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  core::TrainerConfig tcfg;
  tcfg.expiry_seconds = 900.0;
  core::OnlineTrainer trainer(model, tcfg);

  for (data::SliceId t = 0; t < 6; ++t) {
    trainer.AdvanceTime(dataset.SliceTimestamp(t));
    for (const auto& s : stream.Slice(t)) trainer.Observe(s);
    trainer.RunUntilConverged();
  }
  // After finishing slice 5 (time >= 4500s), every stored sample must be
  // younger than the expiry window relative to now, up to the samples
  // random replay has not touched yet; none may be older than 3 windows.
  const double now = trainer.now();
  for (const auto& s : trainer.store().samples()) {
    EXPECT_LT(now - s.timestamp, 3 * 900.0);
  }
}

TEST(StreamingIntegrationTest, ModelTracksDriftAcrossSlices) {
  const auto dataset = MakeDataset(8);
  stream::StreamConfig scfg;
  scfg.density = 0.2;
  scfg.resample_pairs_each_slice = true;
  scfg.seed = 4;
  const stream::SampleStream stream(dataset, scfg);

  core::AmfModel model(core::MakeResponseTimeConfig(1));
  model.EnsureUser(29);
  model.EnsureService(99);
  core::TrainerConfig tcfg;
  tcfg.expiry_seconds = 900.0;
  core::OnlineTrainer trainer(model, tcfg);

  std::vector<double> slice_mre;
  for (data::SliceId t = 0; t < 8; ++t) {
    trainer.AdvanceTime(dataset.SliceTimestamp(t));
    for (const auto& s : stream.Slice(t)) trainer.Observe(s);
    trainer.RunUntilConverged();
    std::vector<double> rel;
    common::Rng rng(100 + t);
    for (int i = 0; i < 1500; ++i) {
      const auto u = static_cast<data::UserId>(rng.Index(30));
      const auto sv = static_cast<data::ServiceId>(rng.Index(100));
      const double truth =
          dataset.Value(data::QoSAttribute::kResponseTime, u, sv, t);
      rel.push_back(std::abs(model.PredictRaw(u, sv) - truth) / truth);
    }
    slice_mre.push_back(common::Median(rel));
  }
  // Later slices must be at least as good as the cold first slice, and
  // the final accuracy must be solid.
  EXPECT_LT(slice_mre.back(), slice_mre.front());
  EXPECT_LT(slice_mre.back(), 0.45);
}

}  // namespace
}  // namespace amf

#include "data/masking.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/check.h"

namespace amf::data {
namespace {

linalg::Matrix FullSlice(std::size_t rows, std::size_t cols) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>(r * cols + c + 1);
    }
  }
  return m;
}

TEST(MaskingTest, ExactTrainFraction) {
  const linalg::Matrix slice = FullSlice(10, 20);
  common::Rng rng(1);
  const TrainTestSplit split = SplitSlice(slice, 0.3, rng);
  EXPECT_EQ(split.train.nnz(), 60u);  // 0.3 * 200
  EXPECT_EQ(split.test.size(), 140u);
}

TEST(MaskingTest, TrainAndTestPartitionCells) {
  const linalg::Matrix slice = FullSlice(8, 9);
  common::Rng rng(2);
  const TrainTestSplit split = SplitSlice(slice, 0.5, rng);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (std::size_t r = 0; r < 8; ++r) {
    for (const SparseEntry& e : split.train.Row(r)) {
      seen.insert({r, e.index});
      EXPECT_DOUBLE_EQ(e.value, slice(r, e.index));
    }
  }
  for (const QoSSample& s : split.test) {
    const auto [it, inserted] = seen.insert({s.user, s.service});
    EXPECT_TRUE(inserted) << "test overlaps train at (" << s.user << ","
                          << s.service << ")";
    EXPECT_DOUBLE_EQ(s.value, slice(s.user, s.service));
  }
  EXPECT_EQ(seen.size(), 72u);
}

TEST(MaskingTest, DensityOneKeepsEverything) {
  const linalg::Matrix slice = FullSlice(4, 5);
  common::Rng rng(3);
  const TrainTestSplit split = SplitSlice(slice, 1.0, rng);
  EXPECT_EQ(split.train.nnz(), 20u);
  EXPECT_TRUE(split.test.empty());
}

TEST(MaskingTest, NaNCellsExcluded) {
  linalg::Matrix slice = FullSlice(4, 4);
  slice(0, 0) = std::numeric_limits<double>::quiet_NaN();
  slice(3, 3) = std::numeric_limits<double>::quiet_NaN();
  common::Rng rng(4);
  const TrainTestSplit split = SplitSlice(slice, 0.5, rng);
  EXPECT_EQ(split.train.nnz() + split.test.size(), 14u);
  EXPECT_FALSE(split.train.Has(0, 0));
  for (const QoSSample& s : split.test) {
    EXPECT_FALSE(s.user == 0 && s.service == 0);
    EXPECT_FALSE(s.user == 3 && s.service == 3);
  }
}

TEST(MaskingTest, DeterministicInRng) {
  const linalg::Matrix slice = FullSlice(6, 6);
  common::Rng rng_a(9), rng_b(9);
  const TrainTestSplit a = SplitSlice(slice, 0.4, rng_a);
  const TrainTestSplit b = SplitSlice(slice, 0.4, rng_b);
  EXPECT_EQ(a.test.size(), b.test.size());
  for (std::size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test[i], b.test[i]);
  }
}

TEST(MaskingTest, DifferentSeedsDifferentMasks) {
  const linalg::Matrix slice = FullSlice(10, 10);
  common::Rng rng_a(1), rng_b(2);
  const TrainTestSplit a = SplitSlice(slice, 0.5, rng_a);
  const TrainTestSplit b = SplitSlice(slice, 0.5, rng_b);
  int same = 0;
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      if (a.train.Has(r, c) == b.train.Has(r, c)) ++same;
    }
  }
  EXPECT_LT(same, 85);
}

TEST(MaskingTest, SliceIdPropagated) {
  const linalg::Matrix slice = FullSlice(3, 3);
  common::Rng rng(5);
  const TrainTestSplit split = SplitSlice(slice, 0.5, rng, 42);
  for (const QoSSample& s : split.test) EXPECT_EQ(s.slice, 42u);
}

TEST(MaskingTest, InvalidDensityThrows) {
  const linalg::Matrix slice = FullSlice(2, 2);
  common::Rng rng(6);
  EXPECT_THROW(SplitSlice(slice, 0.0, rng), common::CheckError);
  EXPECT_THROW(SplitSlice(slice, 1.5, rng), common::CheckError);
  EXPECT_THROW(SplitSlice(slice, -0.1, rng), common::CheckError);
}

TEST(MaskingTest, SampleDensityMatchesSplit) {
  const linalg::Matrix slice = FullSlice(5, 8);
  common::Rng rng(7);
  const SparseMatrix train = SampleDensity(slice, 0.25, rng);
  EXPECT_EQ(train.nnz(), 10u);
}

}  // namespace
}  // namespace amf::data

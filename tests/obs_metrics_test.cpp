#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace {

using amf::obs::Counter;
using amf::obs::Gauge;
using amf::obs::HistogramSnapshot;
using amf::obs::LatencyHistogram;
using amf::obs::LatencyHistogramOptions;
using amf::obs::MetricsRegistry;
using amf::obs::MetricsSnapshot;
using amf::obs::ScopedCounterTimer;
using amf::obs::ScopedLatencyTimer;

// --- Minimal JSON validator -------------------------------------------------
// Enough of a recursive-descent parser to prove ToJson emits syntactically
// valid JSON (objects, arrays, strings, numbers); values are not
// interpreted.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
      } else if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool Number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Counters / gauges ------------------------------------------------------

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("events");
  c->Increment();
  c->Increment(9);
  EXPECT_EQ(c->value(), 10u);
  reg.GetGauge("level")->Set(2.5);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(snap.HasCounter("events"));
  EXPECT_EQ(snap.CounterValue("events"), 10u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("level"), 2.5);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  EXPECT_FALSE(snap.HasCounter("missing"));
}

TEST(MetricsRegistryTest, GetIsIdempotentWithStablePointers) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  LatencyHistogramOptions narrow{.min_value = 1.0, .max_value = 2.0,
                                 .buckets = 4};
  LatencyHistogram* h1 = reg.GetLatencyHistogram("lat", narrow);
  // Later options are ignored: same object, original configuration.
  LatencyHistogram* h2 = reg.GetLatencyHistogram("lat", {});
  EXPECT_EQ(h1, h2);
  EXPECT_DOUBLE_EQ(h2->min_value(), 1.0);
  EXPECT_EQ(h2->buckets(), 4u);
}

TEST(MetricsRegistryTest, CallbackCounterAndGaugeSampleAtSnapshotTime) {
  MetricsRegistry reg;
  std::atomic<std::uint64_t> external{7};
  reg.RegisterCallbackCounter("ext.count", [&external] {
    return external.load(std::memory_order_relaxed);
  });
  reg.RegisterCallbackGauge("ext.level", [] { return 0.25; });
  EXPECT_EQ(reg.Snapshot().CounterValue("ext.count"), 7u);
  external.store(9, std::memory_order_relaxed);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("ext.count"), 9u);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("ext.level"), 0.25);
}

// --- Latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, RecordsIntoLogSpacedBuckets) {
  LatencyHistogram h({.min_value = 1e-3, .max_value = 10.0, .buckets = 32});
  for (int i = 0; i < 100; ++i) h.Record(0.010);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.sum(), 1.0, 1e-9);
  // All samples landed in one bucket whose bounds bracket the value.
  std::size_t hit = 0, hit_bucket = 0;
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    if (h.bucket_count(b) > 0) {
      ++hit;
      hit_bucket = b;
    }
  }
  EXPECT_EQ(hit, 1u);
  EXPECT_GE(h.UpperBound(hit_bucket), 0.010);
  if (hit_bucket > 0) {
    EXPECT_LT(h.UpperBound(hit_bucket - 1), 0.010);
  }
}

TEST(LatencyHistogramTest, UnderflowOverflowTrackedExplicitly) {
  LatencyHistogram h({.min_value = 1e-3, .max_value = 1.0, .buckets = 8});
  h.Record(1e-6);   // below min
  h.Record(5.0);    // above max
  h.Record(1.0);    // max is exclusive -> overflow
  h.Record(std::nan(""));  // NaN -> underflow bucket-less
  h.Record(0.1);    // in range
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 2u);
  std::uint64_t in_range = 0;
  for (std::size_t b = 0; b < h.buckets(); ++b) in_range += h.bucket_count(b);
  EXPECT_EQ(in_range, 1u);  // never folded into edge buckets
}

TEST(LatencyHistogramTest, PercentilesOnKnownDistribution) {
  LatencyHistogram h({.min_value = 1e-4, .max_value = 10.0, .buckets = 128});
  // 90 fast samples at ~1ms, 10 slow at ~1s.
  for (int i = 0; i < 90; ++i) h.Record(0.001);
  for (int i = 0; i < 10; ++i) h.Record(1.0);
  HistogramSnapshot snap;
  snap.min_value = h.min_value();
  snap.max_value = h.max_value();
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    snap.upper_bounds.push_back(h.UpperBound(b));
    snap.counts.push_back(h.bucket_count(b));
  }
  snap.total = h.count();
  snap.sum = h.sum();
  // Bucket width at these scales is ~9.4% (128 log buckets over 5
  // decades); percentiles are exact up to one bucket.
  EXPECT_NEAR(snap.p50(), 0.001, 0.001 * 0.2);
  EXPECT_NEAR(snap.Percentile(99.0), 1.0, 1.0 * 0.2);
  EXPECT_NEAR(snap.mean(), (90 * 0.001 + 10 * 1.0) / 100.0, 1e-9);
}

TEST(LatencyHistogramTest, PercentileEdgeCases) {
  // Empty histogram: NaN is the documented sentinel — a cold
  // connection's histogram must never masquerade as a real 0s latency.
  HistogramSnapshot empty;
  EXPECT_TRUE(std::isnan(empty.Percentile(50.0)));
  EXPECT_TRUE(std::isnan(empty.Percentile(0.0)));
  EXPECT_TRUE(std::isnan(empty.Percentile(100.0)));

  LatencyHistogram h({.min_value = 1e-3, .max_value = 1.0, .buckets = 8});
  h.Record(0.05);  // single element
  HistogramSnapshot snap;
  snap.min_value = h.min_value();
  snap.max_value = h.max_value();
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    snap.upper_bounds.push_back(h.UpperBound(b));
    snap.counts.push_back(h.bucket_count(b));
  }
  snap.total = h.count();
  snap.sum = h.sum();
  // Locate the sample's bucket: edge semantics are contractual.
  std::size_t hit = 0;
  for (std::size_t b = 0; b < snap.counts.size(); ++b) {
    if (snap.counts[b] > 0) hit = b;
  }
  const double lower = hit == 0 ? snap.min_value : snap.upper_bounds[hit - 1];
  const double upper = snap.upper_bounds[hit];
  // p=0 / p=100: edges of the occupied bucket range, not interpolations.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), lower);
  EXPECT_DOUBLE_EQ(snap.Percentile(100.0), upper);
  // A single-sample bucket reports its inclusive upper edge (the
  // conservative answer for an SLO), for any interior percentile.
  EXPECT_DOUBLE_EQ(snap.p50(), upper);
  EXPECT_DOUBLE_EQ(snap.Percentile(10.0), upper);
  EXPECT_NEAR(snap.p50(), 0.05, 0.05);
  EXPECT_GE(upper, 0.05);
  EXPECT_LT(lower, 0.05);

  // Ranks landing in underflow/overflow saturate at the bounds.
  snap.underflow = 1000;
  snap.total += 1000;
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), snap.min_value);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), snap.min_value);
  snap.overflow = 100000;
  snap.total += 100000;
  EXPECT_DOUBLE_EQ(snap.Percentile(99.9), snap.max_value);
  EXPECT_DOUBLE_EQ(snap.Percentile(100.0), snap.max_value);

  // All-overflow population: every percentile is the max_value lower
  // bound — an honest saturation, not an interpolation.
  HistogramSnapshot all_over;
  all_over.min_value = 1e-3;
  all_over.max_value = 1.0;
  all_over.upper_bounds = snap.upper_bounds;
  all_over.counts.assign(snap.counts.size(), 0);
  all_over.overflow = 7;
  all_over.total = 7;
  EXPECT_DOUBLE_EQ(all_over.Percentile(0.0), all_over.max_value);
  EXPECT_DOUBLE_EQ(all_over.p50(), all_over.max_value);
  EXPECT_DOUBLE_EQ(all_over.Percentile(100.0), all_over.max_value);
  // All-underflow mirrors with min_value.
  HistogramSnapshot all_under = all_over;
  all_under.overflow = 0;
  all_under.underflow = 7;
  EXPECT_DOUBLE_EQ(all_under.Percentile(0.0), all_under.min_value);
  EXPECT_DOUBLE_EQ(all_under.p50(), all_under.min_value);
  EXPECT_DOUBLE_EQ(all_under.Percentile(100.0), all_under.min_value);
}

TEST(LatencyHistogramTest, InvalidOptionsThrow) {
  EXPECT_THROW(
      LatencyHistogram({.min_value = 0.0, .max_value = 1.0, .buckets = 4}),
      amf::common::CheckError);
  EXPECT_THROW(
      LatencyHistogram({.min_value = 1.0, .max_value = 1.0, .buckets = 4}),
      amf::common::CheckError);
  EXPECT_THROW(
      LatencyHistogram({.min_value = 1e-3, .max_value = 1.0, .buckets = 0}),
      amf::common::CheckError);
}

// --- Concurrency ------------------------------------------------------------

TEST(MetricsRegistryTest, ConcurrentUpdatesAndSnapshotsAgree) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hammer.count");
  LatencyHistogram* h = reg.GetLatencyHistogram("hammer.lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    // Monitors run throughout; totals observed must be monotonic.
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t seen = reg.Snapshot().CounterValue("hammer.count");
      EXPECT_GE(seen, last);
      last = seen;
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(1e-4 * (t + 1));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("hammer.count"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot* hs = snap.FindHistogram("hammer.lat");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --- Exporters --------------------------------------------------------------

MetricsSnapshot ExampleSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("pipeline.accepted")->Increment(42);
  reg.GetCounter("weird name\"with\\quotes")->Increment(1);
  reg.GetGauge("ring.occupancy")->Set(17.0);
  LatencyHistogram* h = reg.GetLatencyHistogram(
      "predict.seconds", {.min_value = 1e-6, .max_value = 1.0, .buckets = 16});
  h->Record(1e-5);
  h->Record(1e-4);
  h->Record(1e-4);
  h->Record(2.0);  // overflow
  return reg.Snapshot();
}

TEST(ExportTest, ToJsonIsValidAndCarriesNames) {
  const std::string json = amf::obs::ToJson(ExampleSnapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"pipeline.accepted\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"ring.occupancy\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"predict.seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
  // Escaping round-trips through the validator too.
  EXPECT_NE(json.find("weird name\\\"with\\\\quotes"), std::string::npos);
}

TEST(ExportTest, ToJsonOfEmptyRegistryIsValid) {
  MetricsRegistry reg;
  const std::string json = amf::obs::ToJson(reg.Snapshot());
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(ExportTest, ToPrometheusFormat) {
  const std::string text = amf::obs::ToPrometheus(ExampleSnapshot());
  EXPECT_NE(text.find("# TYPE amf_pipeline_accepted counter"),
            std::string::npos);
  EXPECT_NE(text.find("amf_pipeline_accepted 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amf_ring_occupancy gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amf_predict_seconds histogram"),
            std::string::npos);
  // Name sanitization: every non-alphanumeric becomes '_'.
  EXPECT_NE(text.find("amf_weird_name_with_quotes 1"), std::string::npos);
  // +Inf bucket equals _count equals total samples (incl. overflow).
  EXPECT_NE(text.find("amf_predict_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("amf_predict_seconds_count 4"), std::string::npos);
}

TEST(ExportTest, PrometheusBucketsAreCumulative) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetLatencyHistogram(
      "lat", {.min_value = 0.1, .max_value = 10.0, .buckets = 4});
  h->Record(0.01);  // underflow: must count into every finite bucket
  h->Record(0.15);
  h->Record(5.0);
  const std::string text = amf::obs::ToPrometheus(reg.Snapshot());
  // Parse the bucket counts back out in order and check monotonicity and
  // that the first finite bucket already includes the underflow sample.
  std::vector<std::uint64_t> cum;
  std::size_t pos = 0;
  while ((pos = text.find("amf_lat_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t close = text.find("} ", pos);
    cum.push_back(std::stoull(text.substr(close + 2)));
    pos = close;
  }
  ASSERT_EQ(cum.size(), 5u);  // 4 finite + +Inf
  EXPECT_GE(cum.front(), 1u);
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_EQ(cum.back(), 3u);
}

// --- Scoped timers ----------------------------------------------------------

TEST(TraceTest, ScopedTimersRecordAndCount) {
  MetricsRegistry reg;
  Counter* calls = reg.GetCounter("op.calls");
  LatencyHistogram* lat = reg.GetLatencyHistogram("op.seconds");
  {
    ScopedCounterTimer trace(calls, lat);
  }
  { ScopedLatencyTimer timer(lat); }
  EXPECT_EQ(calls->value(), 1u);
  EXPECT_EQ(lat->count(), 2u);
  // Null-safe: instrumentation disabled costs a branch, not a crash.
  { ScopedCounterTimer trace(nullptr, nullptr); }
  { ScopedLatencyTimer timer(nullptr); }
}

}  // namespace

// TSan-targeted stress tests for ConcurrentPredictionService: uploads,
// predictions, training ticks, and registration all racing each other.
// Assertions are deliberately weak (finite outputs, counters add up) —
// the point is that every interleaving TSan can provoke is exercised.
#include "adapt/concurrent_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/online_trainer.h"
#include "linalg/matrix.h"
#include "stream/wal.h"

namespace amf::adapt {
namespace {

PredictionServiceConfig StressConfig(std::size_t replay_threads) {
  PredictionServiceConfig config{core::MakeResponseTimeConfig(), {}, 1};
  config.trainer.replay_threads = replay_threads;
  config.trainer.expiry_seconds = 0.0;
  return config;
}

// Producers hammering ReportObservation + readers hammering PredictQoS /
// PredictQoSMany + one trainer thread ticking, all concurrently.
void RunStress(std::size_t replay_threads) {
  ConcurrentPredictionService service(StressConfig(replay_threads), 1024);
  constexpr std::size_t kUsers = 12, kServices = 24;
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> produced{0};
  std::atomic<std::size_t> nonfinite{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      std::size_t i = static_cast<std::size_t>(p) * 7919;
      while (!stop.load(std::memory_order_relaxed)) {
        const data::QoSSample sample{
            0, static_cast<data::UserId>(i % kUsers),
            static_cast<data::ServiceId>((i * 31) % kServices),
            0.2 + 0.001 * static_cast<double>(i % 997), 0.0};
        service.ReportObservation(sample);
        produced.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::vector<data::ServiceId> candidates(kServices);
      for (std::size_t s = 0; s < kServices; ++s) {
        candidates[s] = static_cast<data::ServiceId>(s);
      }
      std::vector<double> values(kServices);
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto u = static_cast<data::UserId>(i % kUsers);
        const auto pred = service.PredictQoS(
            u, static_cast<data::ServiceId>(i % kServices));
        if (pred.has_value() && !std::isfinite(*pred)) {
          nonfinite.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 7 == 0) {
          service.PredictQoSMany(u, candidates, values);
          for (std::size_t s = 0; s < kServices; ++s) {
            // NaN marks an unknown id; anything else must be finite.
            if (!std::isnan(values[s]) && !std::isfinite(values[s])) {
              nonfinite.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        ++i;
      }
    });
  }

  // The trainer role: ticks (ring drain + ingest + replay) racing the
  // producers and readers above.
  std::thread trainer([&] {
    for (int iter = 0; iter < 60; ++iter) {
      service.Tick(static_cast<double>(iter));
    }
  });

  trainer.join();
  stop.store(true);
  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(nonfinite.load(), 0u);
  EXPECT_EQ(service.observations() + service.dropped_observations(),
            produced.load());
}

TEST(ConcurrentStressTest, UploadPredictTrainSerialReplay) { RunStress(1); }

TEST(ConcurrentStressTest, UploadPredictTrainShardedReplay) { RunStress(4); }

TEST(ConcurrentStressTest, RegistrationChurnUnderLoad) {
  // Growth (the one remaining exclusive-lock path) racing predictions and
  // uploads: readers must always see either "unknown id" or a finite
  // value, never torn state.
  ConcurrentPredictionService service(StressConfig(2), 512);
  service.RegisterUser("u0");
  service.RegisterService("s0");
  service.ReportObservation({0, 0, 0, 1.0, 0.0});
  service.Tick(0.0);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> nonfinite{0};
  std::atomic<data::UserId> max_user{0};
  std::atomic<data::ServiceId> max_service{0};

  std::thread registrar([&] {
    for (int i = 1; i <= 200; ++i) {
      const auto u = service.RegisterUser("u" + std::to_string(i));
      const auto s = service.RegisterService("s" + std::to_string(i));
      max_user.store(u, std::memory_order_relaxed);
      max_service.store(s, std::memory_order_relaxed);
    }
  });

  std::thread producer([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto u = max_user.load(std::memory_order_relaxed);
      const auto s = max_service.load(std::memory_order_relaxed);
      service.ReportObservation(
          {0, static_cast<data::UserId>(i % (u + 1)),
           static_cast<data::ServiceId>(i % (s + 1)), 0.5, 0.0});
      ++i;
    }
  });

  std::thread reader([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto u = max_user.load(std::memory_order_relaxed);
      const auto s = max_service.load(std::memory_order_relaxed);
      const auto pred =
          service.PredictQoS(static_cast<data::UserId>(i % (u + 1)),
                             static_cast<data::ServiceId>(i % (s + 1)));
      if (pred.has_value() && !std::isfinite(*pred)) {
        nonfinite.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  });

  for (int iter = 0; iter < 30; ++iter) {
    service.Tick(static_cast<double>(iter));
  }
  registrar.join();
  stop.store(true);
  producer.join();
  reader.join();

  EXPECT_EQ(nonfinite.load(), 0u);
  // Everything the registrar created is now predictable.
  service.Tick(31.0);
  EXPECT_TRUE(service.PredictQoS(200, 200).has_value());
}

TEST(ConcurrentStressTest, JoinRetireChurnRacesPredictions) {
  // Transient entities joining, uploading, and retiring while readers
  // predict and the trainer ticks: exercises the barrier-deferred
  // reclamation path (registry mutation + seqlock row rewrite + store
  // purge) against concurrent row readers under TSan.
  ConcurrentPredictionService service(StressConfig(2), 1024);
  constexpr std::size_t kBaseUsers = 6, kBaseServices = 12;
  for (std::size_t u = 0; u < kBaseUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kBaseServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> nonfinite{0};
  constexpr int kChurnCycles = 150;
  constexpr std::size_t kWindow = 4;

  std::thread churner([&] {
    for (int i = 0; i < kChurnCycles; ++i) {
      const auto u =
          service.RegisterUser("churn-u" + std::to_string(i));
      const auto s =
          service.RegisterService("churn-s" + std::to_string(i));
      service.ReportObservation({0, u, s, 0.7, 0.0});
      if (i >= static_cast<int>(kWindow)) {
        const std::string old = std::to_string(i - kWindow);
        EXPECT_TRUE(service.RetireUser("churn-u" + old));
        EXPECT_TRUE(service.RetireService("churn-s" + old));
      }
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        // Ids beyond the base range hit recycled/in-flight slots.
        const auto pred = service.PredictQoS(
            static_cast<data::UserId>(i % (kBaseUsers + 8)),
            static_cast<data::ServiceId>(i % (kBaseServices + 8)));
        if (pred.has_value() && !std::isfinite(*pred)) {
          nonfinite.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  std::thread producer([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      service.ReportObservation(
          {0, static_cast<data::UserId>(i % kBaseUsers),
           static_cast<data::ServiceId>(i % kBaseServices), 0.4, 0.0});
      ++i;
    }
  });

  for (int iter = 0; iter < 60; ++iter) {
    service.Tick(static_cast<double>(iter));
  }
  churner.join();
  // Retire the final window, then one last barrier to apply everything.
  for (int i = kChurnCycles - static_cast<int>(kWindow); i < kChurnCycles;
       ++i) {
    EXPECT_TRUE(service.RetireUser("churn-u" + std::to_string(i)));
    EXPECT_TRUE(service.RetireService("churn-s" + std::to_string(i)));
  }
  service.Tick(61.0);
  stop.store(true);
  producer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(nonfinite.load(), 0u);
  const auto occ = service.registry_occupancy();
  // Every churned entity retired: only the base population stays active,
  // and after the barrier every slot is either active or free-listed.
  EXPECT_EQ(occ.users_active, kBaseUsers);
  EXPECT_EQ(occ.services_active, kBaseServices);
  EXPECT_LE(occ.user_slots, kBaseUsers + kChurnCycles);
  EXPECT_LE(occ.service_slots, kBaseServices + kChurnCycles);
  EXPECT_EQ(occ.user_slots, occ.users_active + occ.users_free);
  EXPECT_EQ(occ.service_slots, occ.services_active + occ.services_free);
}

TEST(ConcurrentStressTest, AdjacentRowHammer) {
  // The arena layout's core claim: one row's guarded SGD publish shares no
  // cache line — and, for correctness under TSan, no synchronization
  // state — with its neighbors. Two writers hammer adjacent service rows
  // (s and s+1 for every even s) while readers sweep the block-validated
  // shared paths across exactly those rows. Any layout bug that lets a
  // publish touch a neighbor's lanes, or any hole in the block validation
  // protocol, shows up here as a TSan report or a non-finite readout.
  core::AmfConfig cfg = core::MakeResponseTimeConfig(/*seed=*/31);
  cfg.rank = 10;
  core::AmfModel model(cfg);
  constexpr std::size_t kUsers = 4;
  // Span several validation blocks so block boundaries are exercised.
  constexpr std::size_t kServices = core::AmfModel::kSharedPredictBlock * 3;
  model.EnsureUser(kUsers - 1);
  model.EnsureService(kServices - 1);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> nonfinite{0};

  // Writer w owns user w and the services with parity w: the two writers
  // always update adjacent service rows concurrently, never the same row
  // (the seqlock orders one writer per row; exclusion is ours to provide).
  std::vector<std::thread> writers;
  for (std::size_t w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s =
            static_cast<data::ServiceId>(((2 * i) % kServices) + w);
        model.OnlineUpdateGuarded(static_cast<data::UserId>(w),
                                  s % kServices,
                                  0.3 + 0.001 * static_cast<double>(i % 71));
        ++i;
      }
    });
  }

  std::vector<data::ServiceId> ids(kServices);
  for (std::size_t s = 0; s < kServices; ++s) {
    ids[s] = static_cast<data::ServiceId>(s);
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::vector<double> row(kServices);
      std::vector<double> gather(kServices);
      for (int iter = 0; iter < 400; ++iter) {
        const auto u =
            static_cast<data::UserId>((iter + r) % (kUsers - 2));
        model.PredictRowRawShared(u + 2, row);  // users no writer touches
        model.PredictManyRawShared(u + 2, ids, gather);
        for (std::size_t s = 0; s < kServices; ++s) {
          if (!std::isfinite(row[s]) || !std::isfinite(gather[s])) {
            nonfinite.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!std::isfinite(model.PredictRawShared(
                u + 2, static_cast<data::ServiceId>(iter % kServices)))) {
          nonfinite.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (auto& t : readers) t.join();
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(nonfinite.load(), 0u);

  // Post-race invariant: every row pointer still honors the arena
  // alignment contract (no reallocation happened under the hammer).
  for (data::ServiceId s = 0; s < model.num_services(); ++s) {
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(
                  model.ServiceFactors(s).data()) %
                  core::AmfModel::kFactorRowAlignment,
              0u);
  }
}

TEST(ConcurrentStressTest, ReplicaRefreshRacesMatrixScans) {
  // Compressed read replicas (DESIGN.md §13): the trainer's barrier-time
  // RefreshReplicas republishes bf16 rows through the replica seqlocks
  // while readers stream whole-matrix and batched scans off those same
  // slabs. Any torn replica row, any refresh outside the barrier's
  // quiescence, or any hole in the packed-version block validation shows
  // up as a TSan report or a non-finite readout. The mid-flight precision
  // flips exercise SetReadPrecision's claim to full exclusion.
  ConcurrentPredictionService service(StressConfig(2), 1024);
  constexpr std::size_t kUsers = 8, kServices = 96;
  for (std::size_t u = 0; u < kUsers; ++u) {
    service.RegisterUser("u" + std::to_string(u));
  }
  for (std::size_t s = 0; s < kServices; ++s) {
    service.RegisterService("s" + std::to_string(s));
  }
  service.SetReadPrecision(core::ReadPrecision::kBf16);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> nonfinite{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      std::size_t i = static_cast<std::size_t>(p) * 7919;
      while (!stop.load(std::memory_order_relaxed)) {
        service.ReportObservation(
            {0, static_cast<data::UserId>(i % kUsers),
             static_cast<data::ServiceId>((i * 31) % kServices),
             0.2 + 0.001 * static_cast<double>(i % 997), 0.0});
        ++i;
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      linalg::Matrix scan;
      std::vector<data::ServiceId> candidates(kServices);
      for (std::size_t s = 0; s < kServices; ++s) {
        candidates[s] = static_cast<data::ServiceId>(s);
      }
      std::vector<double> values(kServices);
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        service.PredictMatrix(&scan);
        for (const double v : scan.data()) {
          if (!std::isfinite(v)) {
            nonfinite.fetch_add(1, std::memory_order_relaxed);
          }
        }
        service.PredictQoSMany(static_cast<data::UserId>(i % kUsers),
                               candidates, values);
        for (std::size_t s = 0; s < kServices; ++s) {
          if (!std::isnan(values[s]) && !std::isfinite(values[s])) {
            nonfinite.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++i;
      }
    });
  }

  std::thread trainer([&] {
    for (int iter = 0; iter < 60; ++iter) {
      service.Tick(static_cast<double>(iter));
      if (iter == 20) service.SetReadPrecision(core::ReadPrecision::kFp32);
      if (iter == 40) service.SetReadPrecision(core::ReadPrecision::kBf16);
    }
  });

  trainer.join();
  stop.store(true);
  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(nonfinite.load(), 0u);
  EXPECT_EQ(service.read_precision(), core::ReadPrecision::kBf16);
}

TEST(ConcurrentStressTest, WalAppendRotateStress) {
  // The journal's intended writer is the single drain thread, but its
  // contract is "concurrent appenders are safe". Hammer Append/AppendBatch
  // from several threads with a tiny segment cap (every few appends
  // rotate) while another thread forces fsyncs and watermark GC, then
  // require a full read-back: every successful append durable exactly
  // once, LSNs dense from 1..N.
  const std::string dir =
      ::testing::TempDir() + "/wal_stress_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  stream::JournalConfig cfg;
  cfg.directory = dir;
  cfg.fsync_policy = stream::FsyncPolicy::kOs;
  cfg.segment_max_bytes = 1024;
  stream::ObservationJournal journal(cfg);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 300;
  std::atomic<std::size_t> appended{0};
  std::atomic<bool> stop{false};

  std::thread maintenance([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      journal.SyncNow();
      // GC far behind the tail: correctness (no live record lost) is
      // checked by the read-back below.
      const std::uint64_t last = journal.last_lsn();
      if (last > 600) journal.RemoveSegmentsCoveredBy(last - 600);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::vector<data::QoSSample> batch;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const data::QoSSample sample{
            0, static_cast<data::UserId>(t), static_cast<data::ServiceId>(i),
            0.5, static_cast<double>(t * kPerThread + i)};
        if (i % 10 == 9) {
          batch.assign(3, sample);
          appended.fetch_add(journal.AppendBatch(batch),
                             std::memory_order_relaxed);
        } else if (journal.Append(sample).has_value()) {
          appended.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  maintenance.join();

  EXPECT_EQ(journal.last_lsn(), appended.load());
  // Records GC'd below the final watermark are legitimately gone; all
  // surviving LSNs must be unique, in order, and gap-free per scan
  // guarantees (gaps only where GC removed whole segments).
  const stream::JournalReadResult read = stream::ReadJournal(dir);
  EXPECT_EQ(read.scan.quarantined_segments, 0u);
  ASSERT_FALSE(read.records.empty());
  EXPECT_EQ(read.records.back().lsn, appended.load());
  for (std::size_t i = 1; i < read.records.size(); ++i) {
    EXPECT_LT(read.records[i - 1].lsn, read.records[i].lsn);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace amf::adapt

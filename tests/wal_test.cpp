// Unit tests for the durable observation journal (stream/wal.h):
// framing, LSN continuity across rotation and reopen, fsync policies,
// torn-tail truncation at every byte offset, bit-flip quarantine,
// missing-segment tolerance, watermark GC accounting, and the
// fault-injection append hook.
#include "stream/wal.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "data/qos_types.h"

namespace amf::stream {
namespace {

namespace fs = std::filesystem;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/wal_test_" + name;
  fs::remove_all(dir);
  return dir;
}

data::QoSSample MakeSample(std::uint32_t i) {
  return {i % 4, i % 7, i % 5, 0.25 + 0.001 * static_cast<double>(i),
          static_cast<double>(i)};
}

JournalConfig SmallSegments(const std::string& dir,
                            std::uint64_t max_bytes = 200) {
  JournalConfig cfg;
  cfg.directory = dir;
  cfg.fsync_policy = FsyncPolicy::kOs;
  cfg.segment_max_bytes = max_bytes;  // a few records per segment
  return cfg;
}

std::vector<std::string> Segments(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".amfwal") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(WalTest, AppendAssignsMonotonicLsnsAndRoundTrips) {
  const std::string dir = ScratchDir("roundtrip");
  JournalConfig cfg;
  cfg.directory = dir;
  cfg.fsync_policy = FsyncPolicy::kAlways;
  ObservationJournal journal(cfg);
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto lsn = journal.Append(MakeSample(i), i + 1, 2 * i + 1);
    ASSERT_TRUE(lsn.has_value());
    EXPECT_EQ(*lsn, i + 1u);  // LSNs start at 1
  }
  EXPECT_EQ(journal.last_lsn(), 10u);
  EXPECT_EQ(journal.appends(), 10u);
  EXPECT_EQ(journal.syncs(), 10u);  // kAlways: one fsync per append

  const JournalReadResult read = ReadJournal(dir);
  ASSERT_EQ(read.records.size(), 10u);
  EXPECT_EQ(read.scan.records_scanned, 10u);
  EXPECT_EQ(read.scan.quarantined_segments, 0u);
  EXPECT_EQ(read.scan.lsn_gaps, 0u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(read.records[i].lsn, i + 1u);
    EXPECT_EQ(read.records[i].sample, MakeSample(i));
    EXPECT_EQ(read.records[i].user_generation, i + 1u);
    EXPECT_EQ(read.records[i].service_generation, 2 * i + 1u);
  }
}

TEST(WalTest, MinExclusiveLsnSkipsCoveredRecords) {
  const std::string dir = ScratchDir("minlsn");
  ObservationJournal journal(SmallSegments(dir));
  for (std::uint32_t i = 0; i < 20; ++i) journal.Append(MakeSample(i));
  const JournalReadResult read = ReadJournal(dir, /*min_exclusive_lsn=*/12);
  ASSERT_EQ(read.records.size(), 8u);
  EXPECT_EQ(read.records.front().lsn, 13u);
  EXPECT_EQ(read.scan.records_skipped, 12u);
  EXPECT_EQ(read.scan.min_lsn, 13u);
  EXPECT_EQ(read.scan.max_lsn, 20u);
}

TEST(WalTest, RotationAndReopenKeepLsnsContinuous) {
  const std::string dir = ScratchDir("rotate");
  {
    ObservationJournal journal(SmallSegments(dir));
    for (std::uint32_t i = 0; i < 30; ++i) journal.Append(MakeSample(i));
    EXPECT_GT(journal.rotations(), 0u);
    EXPECT_GT(Segments(dir).size(), 1u);
  }
  {
    // Reopen continues numbering after the newest durable record.
    ObservationJournal journal(SmallSegments(dir));
    EXPECT_EQ(journal.last_lsn(), 30u);
    for (std::uint32_t i = 30; i < 40; ++i) {
      const auto lsn = journal.Append(MakeSample(i));
      ASSERT_TRUE(lsn.has_value());
      EXPECT_EQ(*lsn, i + 1u);
    }
  }
  const JournalReadResult read = ReadJournal(dir);
  ASSERT_EQ(read.records.size(), 40u);
  EXPECT_EQ(read.scan.lsn_gaps, 0u);
  for (std::uint32_t i = 0; i < 40; ++i) {
    EXPECT_EQ(read.records[i].lsn, i + 1u);
  }
}

TEST(WalTest, FsyncPolicyCounters) {
  {
    JournalConfig cfg;
    cfg.directory = ScratchDir("policy_os");
    cfg.fsync_policy = FsyncPolicy::kOs;
    ObservationJournal journal(cfg);
    for (std::uint32_t i = 0; i < 5; ++i) journal.Append(MakeSample(i));
    EXPECT_EQ(journal.syncs(), 0u);
  }
  {
    JournalConfig cfg;
    cfg.directory = ScratchDir("policy_interval");
    cfg.fsync_policy = FsyncPolicy::kInterval;
    cfg.fsync_interval_ms = 1e9;  // never within this test
    ObservationJournal journal(cfg);
    for (std::uint32_t i = 0; i < 5; ++i) journal.Append(MakeSample(i));
    EXPECT_EQ(journal.syncs(), 0u);
    EXPECT_TRUE(journal.SyncNow());  // explicit sync always works
    EXPECT_EQ(journal.syncs(), 1u);
  }
}

TEST(WalTest, IntervalAnchorsOnOldestUnsyncedAppendNotLastSync) {
  JournalConfig cfg;
  cfg.directory = ScratchDir("interval_anchor");
  cfg.fsync_policy = FsyncPolicy::kInterval;
  cfg.fsync_interval_ms = 100.0;
  ObservationJournal journal(cfg);

  // Idle gap longer than the interval, then the first append of a burst.
  // The old last-sync anchoring would fsync here immediately (the append
  // is 0ms old — the sync buys no durability and mis-arms the window);
  // oldest-unsynced anchoring must not.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(journal.Append(MakeSample(0)).has_value());
  EXPECT_EQ(journal.syncs(), 0u);

  // A record's durability window is its OWN age: once the first append
  // has waited out the interval, the next append must sync, even though
  // that next append is brand new.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(journal.Append(MakeSample(1)).has_value());
  EXPECT_EQ(journal.syncs(), 1u);

  // The sync cleared the anchor: an immediate follow-up append is fresh
  // again and must not re-sync.
  ASSERT_TRUE(journal.Append(MakeSample(2)).has_value());
  EXPECT_EQ(journal.syncs(), 1u);
}

TEST(WalTest, SyncIfDueBoundsTheTailOfABurst) {
  JournalConfig cfg;
  cfg.directory = ScratchDir("sync_if_due");
  cfg.fsync_policy = FsyncPolicy::kInterval;
  cfg.fsync_interval_ms = 100.0;
  ObservationJournal journal(cfg);

  // A burst, then silence. Without SyncIfDue the tail records would only
  // become durable when some future append arrives — an unbounded
  // ack-to-durable window for the last writes before an idle period.
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(journal.Append(MakeSample(i)).has_value());
  }
  EXPECT_EQ(journal.syncs(), 0u);
  EXPECT_FALSE(journal.SyncIfDue());  // burst is younger than the interval
  EXPECT_EQ(journal.syncs(), 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(journal.SyncIfDue());  // housekeeping call syncs the tail
  EXPECT_EQ(journal.syncs(), 1u);

  // Idempotent once everything is durable.
  EXPECT_FALSE(journal.SyncIfDue());
  EXPECT_EQ(journal.syncs(), 1u);
}

TEST(WalTest, SyncIfDueIsANoOpForNonIntervalPolicies) {
  JournalConfig cfg;
  cfg.directory = ScratchDir("sync_if_due_os");
  cfg.fsync_policy = FsyncPolicy::kOs;
  ObservationJournal journal(cfg);
  ASSERT_TRUE(journal.Append(MakeSample(0)).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(journal.SyncIfDue());
  EXPECT_EQ(journal.syncs(), 0u);
}

TEST(WalTest, ParseFsyncPolicyNames) {
  EXPECT_EQ(ParseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(ParseFsyncPolicy("os"), FsyncPolicy::kOs);
  EXPECT_FALSE(ParseFsyncPolicy("bogus").has_value());
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
}

TEST(WalTest, FailAppendsAfterHookShedsDeterministically) {
  JournalConfig cfg;
  cfg.directory = ScratchDir("failhook");
  cfg.fail_appends_after = 5;
  ObservationJournal journal(cfg);
  std::size_t ok = 0;
  for (std::uint32_t i = 0; i < 9; ++i) {
    if (journal.Append(MakeSample(i)).has_value()) ++ok;
  }
  EXPECT_EQ(ok, 5u);
  EXPECT_EQ(journal.appends(), 5u);
  EXPECT_EQ(journal.append_failures(), 4u);
  EXPECT_EQ(ReadJournal(cfg.directory).records.size(), 5u);
}

TEST(WalTest, BatchAppendHonorsFailHookMidBatch) {
  JournalConfig cfg;
  cfg.directory = ScratchDir("failbatch");
  cfg.fail_appends_after = 7;
  ObservationJournal journal(cfg);
  std::vector<data::QoSSample> batch;
  for (std::uint32_t i = 0; i < 10; ++i) batch.push_back(MakeSample(i));
  EXPECT_EQ(journal.AppendBatch(batch), 7u);
  EXPECT_EQ(journal.append_failures(), 3u);
  const JournalReadResult read = ReadJournal(cfg.directory);
  ASSERT_EQ(read.records.size(), 7u);
  EXPECT_EQ(read.records.back().lsn, 7u);
}

// The acceptance-criteria truncation fuzz: cut the journal byte stream at
// EVERY offset and require (a) reading never fails, (b) exactly the fully
// contained frames survive, (c) torn-tail truncation settles the file so
// a writer can take over again.
TEST(WalTest, TruncationFuzzAtEveryByteOffset) {
  const std::string master = ScratchDir("fuzz_master");
  {
    JournalConfig cfg;
    cfg.directory = master;
    cfg.fsync_policy = FsyncPolicy::kOs;
    ObservationJournal journal(cfg);
    for (std::uint32_t i = 0; i < 5; ++i) journal.Append(MakeSample(i));
  }
  const std::vector<std::string> segs = Segments(master);
  ASSERT_EQ(segs.size(), 1u);
  std::string bytes;
  {
    std::ifstream is(segs[0], std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    bytes = buf.str();
  }
  constexpr std::size_t kHeader = 16;   // magic + base LSN
  constexpr std::size_t kFrame = 8 + 44;  // len+crc header, fixed payload
  ASSERT_EQ(bytes.size(), kHeader + 5 * kFrame);

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string dir = ScratchDir("fuzz_cut");
    fs::create_directories(dir);
    const std::string seg = dir + "/" + fs::path(segs[0]).filename().string();
    {
      std::ofstream os(seg, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    const std::size_t expect =
        cut < kHeader ? 0 : (cut - kHeader) / kFrame;  // whole frames only
    const JournalReadResult read = ReadJournal(dir);
    EXPECT_EQ(read.records.size(), expect) << "cut=" << cut;

    // Truncating the torn tail (what a reopening writer does) leaves a
    // clean segment holding exactly the surviving frames.
    TruncateTornTail(dir);
    const JournalReadResult after = ReadJournal(dir);
    EXPECT_EQ(after.records.size(), expect) << "cut=" << cut;
    if (cut >= kHeader) {
      EXPECT_EQ(after.scan.quarantined_bytes, 0u) << "cut=" << cut;
    }
  }
}

TEST(WalTest, TornTailIsTruncatedOnReopenAndWritingResumes) {
  const std::string dir = ScratchDir("torn_reopen");
  {
    ObservationJournal journal(SmallSegments(dir, /*max_bytes=*/1 << 20));
    for (std::uint32_t i = 0; i < 4; ++i) journal.Append(MakeSample(i));
  }
  // Crash mid-append: a partial frame lands at the tail.
  const std::vector<std::string> segs = Segments(dir);
  ASSERT_EQ(segs.size(), 1u);
  {
    std::ofstream os(segs[0], std::ios::binary | std::ios::app);
    const char partial[] = {0x2c, 0x00, 0x00};  // length field cut short
    os.write(partial, sizeof(partial));
  }
  {
    ObservationJournal journal(SmallSegments(dir, /*max_bytes=*/1 << 20));
    EXPECT_EQ(journal.torn_tail_truncations(), 1u);
    EXPECT_EQ(journal.last_lsn(), 4u);
    ASSERT_TRUE(journal.Append(MakeSample(4)).has_value());
  }
  const JournalReadResult read = ReadJournal(dir);
  ASSERT_EQ(read.records.size(), 5u);
  EXPECT_EQ(read.records.back().lsn, 5u);
  EXPECT_EQ(read.scan.lsn_gaps, 0u);
}

TEST(WalTest, BitFlipQuarantinesRestOfSegmentOnly) {
  const std::string dir = ScratchDir("bitflip");
  {
    ObservationJournal journal(SmallSegments(dir));
    for (std::uint32_t i = 0; i < 30; ++i) journal.Append(MakeSample(i));
  }
  const std::vector<std::string> segs = Segments(dir);
  ASSERT_GT(segs.size(), 2u);
  const std::uint64_t total = ReadJournal(dir).records.size();
  // Flip one payload byte of the FIRST segment's second record.
  {
    std::fstream f(segs[0],
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const std::size_t size = static_cast<std::size_t>(f.tellg());
    constexpr std::size_t kHeader = 16, kFrame = 52;
    ASSERT_GT(size, kHeader + kFrame + 20);
    const std::size_t at = kHeader + kFrame + 12;  // inside record 2
    f.seekg(static_cast<std::streamoff>(at));
    char c;
    f.read(&c, 1);
    c ^= 0x40;
    f.seekp(static_cast<std::streamoff>(at));
    f.write(&c, 1);
  }
  const JournalReadResult read = ReadJournal(dir);
  // Record 1 of the damaged segment survives; the rest of that segment is
  // quarantined; every later segment still reads — never an abort.
  EXPECT_EQ(read.scan.quarantined_segments, 1u);
  EXPECT_GT(read.scan.quarantined_bytes, 0u);
  EXPECT_LT(read.records.size(), total);
  EXPECT_GT(read.records.size(), 0u);
  EXPECT_EQ(read.records.front().lsn, 1u);
  EXPECT_EQ(read.scan.lsn_gaps, 1u);  // one hole where the quarantine cut
  EXPECT_EQ(read.records.back().lsn, total);  // later segments intact
}

TEST(WalTest, ReopenAfterQuarantineNeverReusesLsns) {
  const std::string dir = ScratchDir("quarantine_lsn");
  std::uint64_t issued = 0;
  {
    ObservationJournal journal(SmallSegments(dir));
    for (std::uint32_t i = 0; i < 30; ++i) journal.Append(MakeSample(i));
    issued = journal.last_lsn();
  }
  // Corrupt the LAST segment's first record: its whole body quarantines,
  // so the reopen can read none of its LSNs — yet it must not hand them
  // out again (a checkpoint watermark may already cover them, which would
  // hide the reused records from the next recovery).
  const std::vector<std::string> segs = Segments(dir);
  {
    std::fstream f(segs.back(),
                   std::ios::binary | std::ios::in | std::ios::out);
    constexpr std::size_t kAt = 16 + 12;  // inside record 1's payload
    f.seekg(static_cast<std::streamoff>(kAt));
    char c;
    f.read(&c, 1);
    c ^= 0x40;
    f.seekp(static_cast<std::streamoff>(kAt));
    f.write(&c, 1);
  }
  ObservationJournal journal(SmallSegments(dir));
  const auto lsn = journal.Append(MakeSample(100));
  ASSERT_TRUE(lsn.has_value());
  EXPECT_GT(*lsn, issued);
}

TEST(WalTest, MissingMiddleSegmentIsSkippedNotFatal) {
  const std::string dir = ScratchDir("missing_mid");
  {
    ObservationJournal journal(SmallSegments(dir));
    for (std::uint32_t i = 0; i < 30; ++i) journal.Append(MakeSample(i));
  }
  std::vector<std::string> segs = Segments(dir);
  ASSERT_GT(segs.size(), 2u);
  const std::uint64_t total = ReadJournal(dir).records.size();
  const std::uint64_t middle_records =
      ReadJournal(dir).scan.segments[1].records;
  fs::remove(segs[1]);
  const JournalReadResult read = ReadJournal(dir);
  EXPECT_EQ(read.records.size(), total - middle_records);
  EXPECT_EQ(read.scan.lsn_gaps, 1u);
  EXPECT_EQ(read.records.back().lsn, total);
}

TEST(WalTest, WatermarkGcRemovesExactlyCoveredSegments) {
  const std::string dir = ScratchDir("gc");
  ObservationJournal journal(SmallSegments(dir));
  for (std::uint32_t i = 0; i < 30; ++i) journal.Append(MakeSample(i));
  const std::vector<std::string> before = Segments(dir);
  ASSERT_GT(before.size(), 2u);
  const JournalReadResult inventory = ReadJournal(dir);

  // Watermark below the first segment's last record: nothing is fully
  // covered, nothing may go.
  EXPECT_EQ(journal.RemoveSegmentsCoveredBy(0), 0u);
  const std::uint64_t first_last = inventory.scan.segments[0].last_lsn;
  EXPECT_EQ(journal.RemoveSegmentsCoveredBy(first_last - 1), 0u);

  // Exactly the first segment is covered by its own last LSN.
  EXPECT_EQ(journal.RemoveSegmentsCoveredBy(first_last), 1u);
  EXPECT_EQ(Segments(dir).size(), before.size() - 1);

  // A watermark covering everything keeps only the active segment, and
  // every record past the watermark is still readable.
  EXPECT_EQ(journal.RemoveSegmentsCoveredBy(journal.last_lsn()),
            before.size() - 2);
  EXPECT_EQ(Segments(dir).size(), 1u);
  EXPECT_EQ(journal.segments_removed(), before.size() - 1);
  const JournalReadResult after = ReadJournal(dir);
  for (const JournalRecord& r : after.records) {
    EXPECT_GT(r.lsn, first_last);
  }
  // The journal keeps appending normally after GC.
  ASSERT_TRUE(journal.Append(MakeSample(30)).has_value());
  EXPECT_EQ(journal.last_lsn(), 31u);
}

}  // namespace
}  // namespace amf::stream

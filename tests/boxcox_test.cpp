#include "transform/boxcox.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"

namespace amf::transform {
namespace {

TEST(BoxCoxTest, AlphaZeroIsLog) {
  EXPECT_DOUBLE_EQ(BoxCox(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BoxCox(std::exp(1.0), 0.0), 1.0);
}

TEST(BoxCoxTest, AlphaOneIsShiftedIdentity) {
  EXPECT_DOUBLE_EQ(BoxCox(5.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(BoxCox(1.0, 1.0), 0.0);
}

TEST(BoxCoxTest, KnownNegativeAlpha) {
  // (x^a - 1)/a with a = -1: 1 - 1/x.
  EXPECT_DOUBLE_EQ(BoxCox(2.0, -1.0), 0.5);
  EXPECT_DOUBLE_EQ(BoxCox(4.0, -1.0), 0.75);
}

TEST(BoxCoxTest, NonPositiveInputThrows) {
  EXPECT_THROW(BoxCox(0.0, 0.5), common::CheckError);
  EXPECT_THROW(BoxCox(-1.0, 1.0), common::CheckError);
}

// Property: rank-preserving (monotone nondecreasing) for every alpha.
class BoxCoxMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(BoxCoxMonotoneTest, MonotoneInX) {
  const double alpha = GetParam();
  double prev = BoxCox(1e-4, alpha);
  for (double x = 1e-3; x < 50.0; x *= 1.7) {
    const double cur = BoxCox(x, alpha);
    EXPECT_GT(cur, prev) << "alpha=" << alpha << " x=" << x;
    prev = cur;
  }
}

TEST_P(BoxCoxMonotoneTest, RoundTripsWithInverse) {
  const double alpha = GetParam();
  for (double x : {0.001, 0.1, 0.9, 1.0, 2.5, 19.9, 100.0}) {
    const double y = BoxCox(x, alpha);
    EXPECT_NEAR(BoxCoxInverse(y, alpha), x, 1e-9 * std::max(1.0, x))
        << "alpha=" << alpha << " x=" << x;
  }
}

TEST_P(BoxCoxMonotoneTest, DerivativeMatchesFiniteDifference) {
  const double alpha = GetParam();
  for (double x : {0.5, 1.0, 3.0, 10.0}) {
    const double h = 1e-6 * x;
    const double fd = (BoxCox(x + h, alpha) - BoxCox(x - h, alpha)) / (2 * h);
    EXPECT_NEAR(BoxCoxDerivative(x, alpha), fd, 1e-5 * std::abs(fd) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaSweep, BoxCoxMonotoneTest,
    ::testing::Values(-1.0, -0.05, -0.007, 0.0, 0.3, 1.0, 2.0));

TEST(BoxCoxInverseTest, OutOfDomainThrows) {
  // alpha = 1: inverse needs y + 1 > 0.
  EXPECT_THROW(BoxCoxInverse(-1.5, 1.0), common::CheckError);
}

TEST(BoxCoxInverseTest, AlphaZeroIsExp) {
  EXPECT_DOUBLE_EQ(BoxCoxInverse(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BoxCoxInverse(1.0, 0.0), std::exp(1.0));
}

TEST(BoxCoxTest, SmallNegativeAlphaApproximatesLog) {
  // As alpha -> 0, boxcox(x, alpha) -> log(x).
  for (double x : {0.2, 1.0, 5.0, 18.0}) {
    EXPECT_NEAR(BoxCox(x, -1e-8), std::log(x), 1e-6);
  }
}

}  // namespace
}  // namespace amf::transform

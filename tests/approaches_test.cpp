#include "exp/approaches.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::exp {
namespace {

TEST(ApproachesTest, StandardListMatchesPaperOrder) {
  const auto names = StandardApproaches();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "UPCC");
  EXPECT_EQ(names[1], "IPCC");
  EXPECT_EQ(names[2], "UIPCC");
  EXPECT_EQ(names[3], "PMF");
  EXPECT_EQ(names[4], "AMF");
}

TEST(ApproachesTest, AmfConfigPerAttribute) {
  const auto rt = AmfConfigFor(data::QoSAttribute::kResponseTime, 1);
  EXPECT_DOUBLE_EQ(rt.transform.alpha, -0.007);
  EXPECT_DOUBLE_EQ(rt.transform.r_max, 20.0);
  const auto tp = AmfConfigFor(data::QoSAttribute::kThroughput, 1);
  EXPECT_DOUBLE_EQ(tp.transform.alpha, -0.05);
  EXPECT_DOUBLE_EQ(tp.transform.r_max, 7000.0);
}

TEST(ApproachesTest, FactoriesProduceCorrectlyNamedPredictors) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"UPCC", "UPCC"},       {"IPCC", "IPCC"},
      {"UIPCC", "UIPCC"},     {"PMF", "PMF"},
      {"AMF", "AMF"},         {"AMF(a=1)", "AMF(a=1)"},
      {"AMF(fixed-w)", "AMF(fixed-w)"}};
  for (const auto& [key, expected_name] : cases) {
    const auto factory = MakeFactory(key, data::QoSAttribute::kResponseTime);
    const auto predictor = factory(1);
    ASSERT_NE(predictor, nullptr) << key;
    EXPECT_EQ(predictor->name(), expected_name);
  }
}

TEST(ApproachesTest, ExtendedApproachesFitAndPredict) {
  const linalg::Matrix slice = testutil::SmallRtSlice(25, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  for (const std::string& name :
       {"NIMF", "AMF(a=1)", "AMF(fixed-w)"}) {
    const auto factory =
        MakeFactory(name, data::QoSAttribute::kResponseTime);
    auto predictor = factory(7);
    predictor->Fit(split.train);
    const eval::Metrics m = eval::EvaluatePredictor(*predictor, split.test);
    EXPECT_GT(m.count, 0u) << name;
    EXPECT_TRUE(std::isfinite(m.mre)) << name;
    EXPECT_LT(m.mre, 1.5) << name;
  }
}

TEST(ApproachesTest, ProtocolWithAmfIsDeterministic) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  eval::ProtocolConfig cfg;
  cfg.density = 0.3;
  cfg.rounds = 2;
  cfg.seed = 13;
  const auto factory = MakeFactory("AMF", data::QoSAttribute::kResponseTime);
  const auto a = eval::RunProtocol(slice, cfg, factory);
  const auto b = eval::RunProtocol(slice, cfg, factory);
  EXPECT_DOUBLE_EQ(a.average.mae, b.average.mae);
  EXPECT_DOUBLE_EQ(a.average.mre, b.average.mre);
  EXPECT_DOUBLE_EQ(a.average.npre, b.average.npre);
}

TEST(ApproachesTest, ThroughputFactoriesUseThroughputRange) {
  // A TP-configured AMF must be able to output values above 20 (RT's
  // ceiling) when trained on large throughput values.
  data::SparseMatrix train(4, 4);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t s = 0; s < 4; ++s) {
      train.Set(u, s, 4000.0 + 100.0 * (u + s));
    }
  }
  auto amf = MakeFactory("AMF", data::QoSAttribute::kThroughput)(1);
  amf->Fit(train);
  EXPECT_GT(amf->Predict(0, 0), 100.0);
}

TEST(ApproachesTest, UnknownNameThrows) {
  EXPECT_THROW(MakeFactory("SVD++", data::QoSAttribute::kResponseTime),
               common::CheckError);
}

TEST(ApproachesTest, EveryStandardApproachFitsAndPredicts) {
  const linalg::Matrix slice = testutil::SmallRtSlice(25, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  for (const std::string& name : StandardApproaches()) {
    const auto factory = MakeFactory(name, data::QoSAttribute::kResponseTime);
    auto predictor = factory(7);
    predictor->Fit(split.train);
    const eval::Metrics m = eval::EvaluatePredictor(*predictor, split.test);
    EXPECT_GT(m.count, 0u) << name;
    EXPECT_TRUE(std::isfinite(m.mae)) << name;
    EXPECT_TRUE(std::isfinite(m.mre)) << name;
  }
}

}  // namespace
}  // namespace amf::exp

#include "cf/pmf.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::cf {
namespace {

TEST(PmfTest, Name) { EXPECT_EQ(Pmf().name(), "PMF"); }

TEST(PmfTest, InvalidConfigThrows) {
  PmfConfig cfg;
  cfg.rank = 0;
  EXPECT_THROW(Pmf{cfg}, common::CheckError);
  PmfConfig cfg2;
  cfg2.learn_rate = 0.0;
  EXPECT_THROW(Pmf{cfg2}, common::CheckError);
}

TEST(PmfTest, PredictBeforeFitThrows) {
  Pmf pmf;
  EXPECT_THROW(pmf.Predict(0, 0), common::CheckError);
}

TEST(PmfTest, EmptyTrainingSetThrows) {
  Pmf pmf;
  data::SparseMatrix empty(3, 3);
  EXPECT_THROW(pmf.Fit(empty), common::CheckError);
}

TEST(PmfTest, FitsObservedEntriesClosely) {
  const linalg::Matrix slice = testutil::SmallRtSlice(25, 60);
  const data::TrainTestSplit split = testutil::Split(slice, 0.5);
  Pmf pmf;
  pmf.Fit(split.train);
  EXPECT_GT(pmf.epochs_run(), 1u);
  EXPECT_LT(pmf.final_train_rmse(), 0.2);  // normalized-domain RMSE
}

TEST(PmfTest, PredictionsWithinNormalizationRange) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 40);
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  Pmf pmf;
  pmf.Fit(split.train);
  double lo = 1e300, hi = -1e300;
  for (const auto& e : split.train.ToSamples()) {
    lo = std::min(lo, e.value);
    hi = std::max(hi, e.value);
  }
  for (const auto& s : split.test) {
    const double p = pmf.Predict(s.user, s.service);
    EXPECT_GE(p, lo - 1e-9);
    EXPECT_LE(p, hi + 1e-9);
  }
}

TEST(PmfTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.3);
  Pmf pmf;
  pmf.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(pmf, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
}

TEST(PmfTest, DeterministicInSeed) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  PmfConfig cfg;
  cfg.seed = 77;
  Pmf a(cfg), b(cfg);
  a.Fit(split.train);
  b.Fit(split.train);
  for (const auto& s : split.test) {
    EXPECT_DOUBLE_EQ(a.Predict(s.user, s.service),
                     b.Predict(s.user, s.service));
  }
}

TEST(PmfTest, DifferentSeedsGiveDifferentModels) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  PmfConfig ca;
  ca.seed = 1;
  PmfConfig cb;
  cb.seed = 2;
  Pmf a(ca), b(cb);
  a.Fit(split.train);
  b.Fit(split.train);
  int diff = 0;
  for (std::size_t i = 0; i < 20 && i < split.test.size(); ++i) {
    const auto& s = split.test[i];
    if (a.Predict(s.user, s.service) != b.Predict(s.user, s.service)) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(PmfTest, EarlyStoppingRespectsMaxEpochs) {
  const linalg::Matrix slice = testutil::SmallRtSlice(15, 30);
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  PmfConfig cfg;
  cfg.max_epochs = 5;
  Pmf pmf(cfg);
  pmf.Fit(split.train);
  EXPECT_LE(pmf.epochs_run(), 5u);
}

TEST(PmfTest, ConstantDataHandled) {
  data::SparseMatrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if ((r + c) % 2 == 0) m.Set(r, c, 3.0);
    }
  }
  Pmf pmf;
  pmf.Fit(m);
  EXPECT_TRUE(std::isfinite(pmf.Predict(0, 1)));
}

}  // namespace
}  // namespace amf::cf

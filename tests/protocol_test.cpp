#include "eval/protocol.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace amf::eval {
namespace {

/// Predicts the mean of the training data (simple but data-dependent, so
/// the protocol's masking is observable).
class MeanPredictor : public Predictor {
 public:
  std::string name() const override { return "mean"; }
  void Fit(const data::SparseMatrix& train) override {
    mean_ = train.GlobalMean();
    ++fits_;
  }
  double Predict(data::UserId, data::ServiceId) const override {
    return mean_;
  }
  static int fits_;

 private:
  double mean_ = 0.0;
};
int MeanPredictor::fits_ = 0;

linalg::Matrix Ramp(std::size_t rows, std::size_t cols) {
  linalg::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = 1.0 + static_cast<double>(r + c);
    }
  }
  return m;
}

TEST(ProtocolTest, RunsRequestedRounds) {
  MeanPredictor::fits_ = 0;
  ProtocolConfig cfg;
  cfg.density = 0.3;
  cfg.rounds = 4;
  cfg.seed = 11;
  const ProtocolResult res = RunProtocol(
      Ramp(10, 10), cfg,
      [](std::uint64_t) { return std::make_unique<MeanPredictor>(); });
  EXPECT_EQ(res.rounds.size(), 4u);
  EXPECT_EQ(MeanPredictor::fits_, 4);
  EXPECT_GT(res.average.mae, 0.0);
  EXPECT_GE(res.fit_seconds, 0.0);
}

TEST(ProtocolTest, DeterministicInSeed) {
  ProtocolConfig cfg;
  cfg.density = 0.4;
  cfg.rounds = 2;
  cfg.seed = 5;
  auto factory = [](std::uint64_t) {
    return std::make_unique<MeanPredictor>();
  };
  const ProtocolResult a = RunProtocol(Ramp(8, 8), cfg, factory);
  const ProtocolResult b = RunProtocol(Ramp(8, 8), cfg, factory);
  EXPECT_DOUBLE_EQ(a.average.mae, b.average.mae);
  EXPECT_DOUBLE_EQ(a.average.mre, b.average.mre);
}

TEST(ProtocolTest, RoundsVaryMasks) {
  ProtocolConfig cfg;
  cfg.density = 0.5;
  cfg.rounds = 2;
  cfg.seed = 7;
  const ProtocolResult res = RunProtocol(
      Ramp(10, 10), cfg,
      [](std::uint64_t) { return std::make_unique<MeanPredictor>(); });
  // Two rounds with different masks almost surely give different MAE.
  EXPECT_NE(res.rounds[0].mae, res.rounds[1].mae);
}

TEST(ProtocolTest, FactorySeedsDiffer) {
  std::vector<std::uint64_t> seeds;
  ProtocolConfig cfg;
  cfg.density = 0.5;
  cfg.rounds = 3;
  RunProtocol(Ramp(5, 5), cfg, [&](std::uint64_t seed) {
    seeds.push_back(seed);
    return std::make_unique<MeanPredictor>();
  });
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
}

TEST(ProtocolTest, ZeroRoundsThrows) {
  ProtocolConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW(
      RunProtocol(Ramp(3, 3), cfg,
                  [](std::uint64_t) {
                    return std::make_unique<MeanPredictor>();
                  }),
      common::CheckError);
}

TEST(ProtocolTest, NullFactoryThrows) {
  ProtocolConfig cfg;
  EXPECT_THROW(RunProtocol(Ramp(3, 3), cfg,
                           [](std::uint64_t) -> std::unique_ptr<Predictor> {
                             return nullptr;
                           }),
               common::CheckError);
}

}  // namespace
}  // namespace amf::eval

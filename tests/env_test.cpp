#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace amf::common {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) ::unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(EnvTest, StringDefaultAndOverride) {
  EXPECT_EQ(EnvString("AMF_TEST_STR", "def"), "def");
  SetEnv("AMF_TEST_STR", "hello");
  EXPECT_EQ(EnvString("AMF_TEST_STR", "def"), "hello");
}

TEST_F(EnvTest, IntParsing) {
  EXPECT_EQ(EnvInt("AMF_TEST_INT", 7), 7);
  SetEnv("AMF_TEST_INT", "42");
  EXPECT_EQ(EnvInt("AMF_TEST_INT", 7), 42);
  SetEnv("AMF_TEST_INT", "not-a-number");
  EXPECT_EQ(EnvInt("AMF_TEST_INT", 7), 7);
}

TEST_F(EnvTest, DoubleParsing) {
  EXPECT_DOUBLE_EQ(EnvDouble("AMF_TEST_DBL", 1.5), 1.5);
  SetEnv("AMF_TEST_DBL", "0.25");
  EXPECT_DOUBLE_EQ(EnvDouble("AMF_TEST_DBL", 1.5), 0.25);
  SetEnv("AMF_TEST_DBL", "zzz");
  EXPECT_DOUBLE_EQ(EnvDouble("AMF_TEST_DBL", 1.5), 1.5);
}

TEST_F(EnvTest, FlagParsing) {
  EXPECT_FALSE(EnvFlag("AMF_TEST_FLAG"));
  EXPECT_TRUE(EnvFlag("AMF_TEST_FLAG", true));
  SetEnv("AMF_TEST_FLAG", "1");
  EXPECT_TRUE(EnvFlag("AMF_TEST_FLAG"));
  SetEnv("AMF_TEST_FLAG", "TRUE");
  EXPECT_TRUE(EnvFlag("AMF_TEST_FLAG"));
  SetEnv("AMF_TEST_FLAG", "yes");
  EXPECT_TRUE(EnvFlag("AMF_TEST_FLAG"));
  SetEnv("AMF_TEST_FLAG", "0");
  EXPECT_FALSE(EnvFlag("AMF_TEST_FLAG"));
  SetEnv("AMF_TEST_FLAG", "off");
  EXPECT_FALSE(EnvFlag("AMF_TEST_FLAG", true));
}

}  // namespace
}  // namespace amf::common

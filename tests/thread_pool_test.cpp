#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace amf::common {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> values(5000);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> out(values.size());
  pool.ParallelFor(0, values.size(),
                   [&](std::size_t i) { out[i] = values[i] * 2.0; });
  double sum = 0;
  for (double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, 5000.0 * 5001.0);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("fail");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Global().ParallelFor(0, 10,
                                   [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace amf::common

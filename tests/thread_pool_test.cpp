#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace amf::common {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> values(5000);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> out(values.size());
  pool.ParallelFor(0, values.size(),
                   [&](std::size_t i) { out[i] = values[i] * 2.0; });
  double sum = 0;
  for (double v : out) sum += v;
  EXPECT_DOUBLE_EQ(sum, 5000.0 * 5001.0);
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("fail");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForUnevenRangeSmallerThanGrain) {
  // n far below participants*8 forces grain = 1 and more helper tasks
  // than indices; every index must still run exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, 200, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, ParallelForCallerParticipates) {
  // With zero queued helpers able to start (single worker wedged on a
  // long task), the calling thread must still drain the loop to
  // completion — the atomic-cursor handout lets it.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  auto blocker = pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> done{0};
  std::thread runner([&] {
    pool.ParallelFor(0, 50, [&](std::size_t) { ++done; });
    release.store(true);
  });
  runner.join();
  blocker.get();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ParallelForSkewedLoadBalances) {
  // One iteration is 1000x the others; dynamic chunk claiming must not
  // serialize the rest behind it. Correctness check only (all covered).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.ParallelFor(0, hits.size(), [&](std::size_t i) {
    if (i == 0) {
      volatile double x = 0;
      for (int k = 0; k < 100000; ++k) x = x + k;
    }
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  ThreadPool::Global().ParallelFor(0, 10,
                                   [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace amf::common

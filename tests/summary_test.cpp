#include "data/summary.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace amf::data {
namespace {

TEST(SummaryTest, CountsAndRanges) {
  InMemoryDataset d(2, 2, 2);
  d.SetValue(QoSAttribute::kResponseTime, 0, 0, 0, 1.0);
  d.SetValue(QoSAttribute::kResponseTime, 1, 1, 0, 3.0);
  d.SetValue(QoSAttribute::kThroughput, 0, 1, 1, 50.0);
  const DatasetSummary s = Summarize(d);
  EXPECT_EQ(s.users, 2u);
  EXPECT_EQ(s.services, 2u);
  EXPECT_EQ(s.slices, 2u);
  EXPECT_EQ(s.rt.stats.count(), 2u);
  EXPECT_DOUBLE_EQ(s.rt.stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.rt.stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.rt.stats.max(), 3.0);
  EXPECT_EQ(s.tp.stats.count(), 1u);
  EXPECT_DOUBLE_EQ(s.tp.stats.mean(), 50.0);
}

TEST(SummaryTest, MaxSlicesLimitsScan) {
  InMemoryDataset d(1, 1, 3);
  d.SetValue(QoSAttribute::kResponseTime, 0, 0, 0, 1.0);
  d.SetValue(QoSAttribute::kResponseTime, 0, 0, 2, 9.0);
  const DatasetSummary s = Summarize(d, 1);
  EXPECT_EQ(s.scanned_slices, 1u);
  EXPECT_EQ(s.rt.stats.count(), 1u);
  EXPECT_DOUBLE_EQ(s.rt.stats.max(), 1.0);
}

TEST(SummaryTest, TableContainsFig6Rows) {
  SyntheticConfig cfg;
  cfg.users = 20;
  cfg.services = 40;
  cfg.slices = 2;
  const SyntheticQoSDataset d(cfg);
  const DatasetSummary s = Summarize(d);
  const std::string table = SummaryTable(s);
  EXPECT_NE(table.find("#Users"), std::string::npos);
  EXPECT_NE(table.find("#Services"), std::string::npos);
  EXPECT_NE(table.find("#Time slices"), std::string::npos);
  EXPECT_NE(table.find("RT range"), std::string::npos);
  EXPECT_NE(table.find("TP average"), std::string::npos);
  EXPECT_NE(table.find("20"), std::string::npos);
  EXPECT_NE(table.find("40"), std::string::npos);
}

TEST(SummaryTest, PartialScanNoted) {
  SyntheticConfig cfg;
  cfg.users = 5;
  cfg.services = 5;
  cfg.slices = 4;
  const SyntheticQoSDataset d(cfg);
  const DatasetSummary s = Summarize(d, 2);
  const std::string table = SummaryTable(s);
  EXPECT_NE(table.find("first 2"), std::string::npos);
}

}  // namespace
}  // namespace amf::data

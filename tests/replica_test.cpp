// Compressed read-replica coverage (DESIGN.md §13): bf16 codec edge
// cases, the mixed-precision strided GEMV kernels against their scalar
// oracles, replica refresh correctness (dirty-only == full, retire and
// growth publish eagerly), the read_precision knob end to end, and
// checkpoint restore keeping the live precision.
#include "core/replica_arena.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <vector>

#include "adapt/prediction_service.h"
#include "common/aligned.h"
#include "common/bf16.h"
#include "common/rng.h"
#include "core/amf_model.h"
#include "core/online_trainer.h"
#include "linalg/kernels.h"

namespace amf::core {
namespace {

using common::Bf16;
using common::Bf16FromDouble;
using common::Bf16FromFloat;
using common::Bf16ToDouble;
using common::Bf16ToFloat;

float FloatFromBits(std::uint32_t bits) { return std::bit_cast<float>(bits); }

// --- bf16 codec ------------------------------------------------------------

TEST(Bf16Test, ExactValuesRoundTrip) {
  // Anything with <= 8 significant mantissa bits survives unchanged.
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.5f, 3.140625f, 256.0f,
                        -1.0f / 1024.0f, 1.984375f}) {
    EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(v)), v) << v;
  }
}

TEST(Bf16Test, NegativeZeroKeepsSign) {
  const float back = Bf16ToFloat(Bf16FromFloat(-0.0f));
  EXPECT_EQ(back, 0.0f);
  EXPECT_TRUE(std::signbit(back));
}

TEST(Bf16Test, RoundsNearestEvenOnTies) {
  // A float exactly halfway between two bf16 neighbours (low 16 bits
  // 0x8000) must round to the EVEN neighbour, in both directions.
  const std::uint16_t even = 0x3F80;  // 1.0
  const float tie_above_even =
      FloatFromBits((static_cast<std::uint32_t>(even) << 16) | 0x8000);
  EXPECT_EQ(Bf16FromFloat(tie_above_even), even) << "tie rounds down to even";

  const std::uint16_t odd = 0x3F81;  // 1.0 + 2^-7
  const float tie_above_odd =
      FloatFromBits((static_cast<std::uint32_t>(odd) << 16) | 0x8000);
  EXPECT_EQ(Bf16FromFloat(tie_above_odd), static_cast<std::uint16_t>(odd + 1))
      << "tie rounds up to even";

  // One ulp past the tie always rounds up, even from an even mantissa.
  const float past_tie =
      FloatFromBits((static_cast<std::uint32_t>(even) << 16) | 0x8001);
  EXPECT_EQ(Bf16FromFloat(past_tie), static_cast<std::uint16_t>(even + 1));
}

TEST(Bf16Test, InfinitiesPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(inf)), inf);
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(-inf)), -inf);
}

TEST(Bf16Test, LargeFiniteRoundsToInfinity) {
  // float max's mantissa is all ones: the RNE bias carries into the
  // exponent and the result is bf16 infinity (same as IEEE float->half
  // overflow behaviour).
  const float fmax = std::numeric_limits<float>::max();
  EXPECT_TRUE(std::isinf(Bf16ToFloat(Bf16FromFloat(fmax))));
  EXPECT_TRUE(std::isinf(Bf16ToFloat(Bf16FromFloat(-fmax))));
  EXPECT_LT(Bf16ToFloat(Bf16FromFloat(-fmax)), 0.0f);
}

TEST(Bf16Test, NanStaysNanAndNeverBecomesInfinity) {
  // The encode special-cases NaN: blindly adding the RNE bias to a NaN
  // with a nearly-empty mantissa could carry into the exponent and
  // produce Inf. The result must stay NaN (quietened) with sign kept.
  for (const std::uint32_t bits :
       {0x7FC00000u, 0x7F800001u, 0xFFC00000u, 0xFF800001u, 0x7FFFFFFFu}) {
    const float nan = FloatFromBits(bits);
    ASSERT_TRUE(std::isnan(nan));
    const float back = Bf16ToFloat(Bf16FromFloat(nan));
    EXPECT_TRUE(std::isnan(back)) << std::hex << bits;
    EXPECT_EQ(std::signbit(back), std::signbit(nan)) << std::hex << bits;
  }
}

TEST(Bf16Test, SubnormalsRoundToNearest) {
  // bf16 shares float's exponent range, so float subnormals map onto
  // bf16 subnormals: the smallest float subnormal is far below half a
  // bf16 ulp and must round to (signed) zero...
  const float tiny = FloatFromBits(0x00000001);
  EXPECT_EQ(Bf16FromFloat(tiny), 0x0000);
  EXPECT_EQ(Bf16FromFloat(-tiny), 0x8000);
  // ...while an exact bf16 subnormal round-trips unchanged.
  const float sub = FloatFromBits(0x00010000);
  EXPECT_GT(sub, 0.0f);
  EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(sub)), sub);
}

TEST(Bf16Test, FromDoubleMatchesFromFloatOfNarrowed) {
  // Documented contract: double encode goes through float (one possible
  // extra rounding, deterministic). Spot-check agreement.
  common::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-10.0, 10.0);
    EXPECT_EQ(Bf16FromDouble(v), Bf16FromFloat(static_cast<float>(v))) << v;
  }
  EXPECT_EQ(Bf16ToDouble(Bf16FromDouble(1.5)), 1.5);
}

TEST(Bf16Test, RoundTripRelativeErrorWithinOneUlp) {
  // 8 mantissa bits -> worst-case relative error 2^-8 under RNE.
  common::Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.Uniform(-4.0, 4.0);
    const double back = Bf16ToDouble(Bf16FromDouble(v));
    EXPECT_NEAR(back, v, std::abs(v) * 0x1p-8 + 1e-40) << v;
  }
}

// --- Mixed-precision strided GEMV kernels ----------------------------------

// The vectorized kernels are compiled with reassociation enabled, so the
// fp64 accumulation order may differ from the scalar oracle's by a few
// ulps (measured max ~4e-14 relative at rank 32). The contract is tight
// closeness, not bit-equality — same as the fp64 GemvRowMajor precedent.
constexpr double kKernelRelTol = 1e-12;

void ExpectKernelClose(double got, double want, std::size_t rank,
                       std::size_t row) {
  EXPECT_NEAR(got, want, std::abs(want) * kKernelRelTol + 1e-15)
      << "rank " << rank << " row " << row;
}

TEST(ReplicaKernelTest, Fp32StridedMatchesReference) {
  common::Rng rng(3);
  for (const std::size_t rank : {1u, 3u, 8u, 10u, 16u, 32u, 33u}) {
    const std::size_t stride = common::RoundUp(rank, 16);  // 64B of floats
    const std::size_t rows = 157;
    std::vector<float, common::AlignedAllocator<float>> block(rows * stride,
                                                              0.0f);
    std::vector<double> x(rank);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t k = 0; k < rank; ++k) {
        block[r * stride + k] = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }
    std::vector<double> got(rows), want(rows);
    linalg::GemvRowMajorStridedFp32(x, block.data(), stride, got);
    linalg::reference::GemvRowMajorStridedFp32(x, block.data(), stride, want);
    for (std::size_t r = 0; r < rows; ++r) {
      ExpectKernelClose(got[r], want[r], rank, r);
    }
  }
}

TEST(ReplicaKernelTest, Bf16StridedMatchesReference) {
  common::Rng rng(4);
  for (const std::size_t rank : {1u, 3u, 8u, 10u, 16u, 32u, 33u}) {
    const std::size_t stride = common::RoundUp(rank, 32);  // 64B of bf16
    const std::size_t rows = 157;
    std::vector<Bf16, common::AlignedAllocator<Bf16>> block(rows * stride, 0);
    std::vector<double> x(rank);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t k = 0; k < rank; ++k) {
        block[r * stride + k] = Bf16FromDouble(rng.Uniform(-1.0, 1.0));
      }
    }
    std::vector<double> got(rows), want(rows);
    linalg::GemvRowMajorStridedBf16(x, block.data(), stride, got);
    linalg::reference::GemvRowMajorStridedBf16(x, block.data(), stride, want);
    for (std::size_t r = 0; r < rows; ++r) {
      ExpectKernelClose(got[r], want[r], rank, r);
    }
  }
}

// --- DirtyRowSet -----------------------------------------------------------

TEST(DirtyRowSetTest, MarkDrainClear) {
  DirtyRowSet set;
  set.EnsureRows(130);
  EXPECT_GE(set.capacity_rows(), 130u);
  EXPECT_EQ(set.CountApprox(), 0u);
  set.Mark(0);
  set.Mark(63);
  set.Mark(64);
  set.Mark(129);
  set.Mark(129);  // idempotent
  EXPECT_EQ(set.CountApprox(), 4u);
  std::vector<std::size_t> rows;
  EXPECT_EQ(set.Drain([&](std::size_t r) { rows.push_back(r); }), 4u);
  EXPECT_EQ(rows, (std::vector<std::size_t>{0, 63, 64, 129}));
  EXPECT_EQ(set.CountApprox(), 0u);
  EXPECT_EQ(set.Drain([](std::size_t) {}), 0u);
  set.Mark(5);
  set.Clear();
  EXPECT_EQ(set.CountApprox(), 0u);
}

// --- ReplicaArena ----------------------------------------------------------

TEST(ReplicaArenaTest, DisabledHoldsNothing) {
  ReplicaArena arena;
  arena.Configure(ReadPrecision::kFp64, 10);
  EXPECT_FALSE(arena.enabled());
  arena.Grow(100);
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.row_bytes(), 0u);
}

TEST(ReplicaArenaTest, PublishSnapshotRoundTrip) {
  for (const ReadPrecision p : {ReadPrecision::kFp32, ReadPrecision::kBf16}) {
    ReplicaArena arena;
    arena.Configure(p, 10);
    arena.Grow(4);
    ASSERT_EQ(arena.size(), 4u);
    // Row stride covers whole cache lines.
    EXPECT_EQ(arena.row_bytes() % 64, 0u);
    common::Rng rng(42);
    std::vector<double> master(10);
    for (double& v : master) v = rng.Uniform(-2.0, 2.0);
    arena.PublishRow(2, master);
    std::vector<double> snap(10);
    arena.SnapshotRow(2, snap);
    const double tol = p == ReadPrecision::kFp32 ? 1e-7 : 0x1p-8;
    for (std::size_t k = 0; k < 10; ++k) {
      EXPECT_NEAR(snap[k], master[k], std::abs(master[k]) * tol) << k;
    }
    // Untouched rows read as zeros with an even (readable) version.
    arena.SnapshotRow(0, snap);
    for (const double v : snap) EXPECT_EQ(v, 0.0);
  }
}

// --- Model-level replica semantics -----------------------------------------

AmfConfig ReplicaConfig(ReadPrecision p = ReadPrecision::kFp64) {
  AmfConfig cfg = MakeResponseTimeConfig(/*seed=*/17);
  cfg.read_precision = p;
  return cfg;
}

void TrainSome(AmfModel& m, int n, std::uint64_t seed = 7) {
  common::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    m.OnlineUpdate(static_cast<data::UserId>(rng.Index(8)),
                   static_cast<data::ServiceId>(rng.Index(24)),
                   0.2 + 3.0 * rng.Uniform());
  }
}

TEST(ModelReplicaTest, Fp64DefaultHasNoReplicasAndIdenticalReadouts) {
  AmfModel m(ReplicaConfig());
  TrainSome(m, 400);
  EXPECT_FALSE(m.replicas_enabled());
  EXPECT_EQ(m.read_precision(), ReadPrecision::kFp64);
  EXPECT_EQ(m.read_row_bytes() % sizeof(double), 0u);
  // The three shared readouts agree to within reassociation noise on the
  // master path (the row readout's bulk GEMV may reorder accumulation).
  std::vector<data::ServiceId> ids;
  for (data::ServiceId s = 0; s < m.num_services(); ++s) ids.push_back(s);
  std::vector<double> many(ids.size()), row(ids.size());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    m.PredictManyRawShared(u, ids, many);
    m.PredictRowRawShared(u, row);
    for (std::size_t s = 0; s < ids.size(); ++s) {
      EXPECT_NEAR(many[s], row[s], std::abs(row[s]) * kKernelRelTol + 1e-15);
      EXPECT_NEAR(m.PredictRawShared(u, ids[s]), row[s],
                  std::abs(row[s]) * kKernelRelTol + 1e-15);
    }
  }
}

TEST(ModelReplicaTest, ReplicaReadoutTracksMasterWithinPrecisionBudget) {
  for (const ReadPrecision p : {ReadPrecision::kFp32, ReadPrecision::kBf16}) {
    AmfModel m(ReplicaConfig(p));
    TrainSome(m, 600);
    ASSERT_TRUE(m.replicas_enabled());
    m.RefreshReplicas();
    const double tol = p == ReadPrecision::kFp32 ? 1e-4 : 5e-2;
    for (data::UserId u = 0; u < m.num_users(); ++u) {
      for (data::ServiceId s = 0; s < m.num_services(); ++s) {
        const double master = m.PredictRaw(u, s);
        const double replica = m.PredictRawShared(u, s);
        EXPECT_NEAR(replica, master, std::abs(master) * tol + 1e-9)
            << "precision " << ToString(p) << " u " << u << " s " << s;
      }
    }
  }
}

TEST(ModelReplicaTest, AllReplicaReadoutsAgree) {
  // Single / batched / full-row readouts decode the same replica rows;
  // they may differ only by the bulk kernel's reassociation noise.
  AmfModel m(ReplicaConfig(ReadPrecision::kBf16));
  TrainSome(m, 500);
  m.RefreshReplicas();
  std::vector<data::ServiceId> ids;
  for (data::ServiceId s = 0; s < m.num_services(); ++s) ids.push_back(s);
  std::vector<double> many(ids.size()), row(ids.size());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    m.PredictManyRawShared(u, ids, many);
    m.PredictRowRawShared(u, row);
    for (std::size_t s = 0; s < ids.size(); ++s) {
      EXPECT_NEAR(many[s], row[s], std::abs(row[s]) * kKernelRelTol + 1e-15)
          << "u " << u << " s " << s;
      EXPECT_NEAR(m.PredictRawShared(u, ids[s]), row[s],
                  std::abs(row[s]) * kKernelRelTol + 1e-15)
          << "u " << u;
    }
  }
}

TEST(ModelReplicaTest, DirtyOnlyRefreshBitExactWithFullRefresh) {
  // Two identical models, same update stream; one refreshes only dirty
  // rows, the other republishes everything. The replicas must be
  // bit-identical — a missed dirty mark would show up here.
  AmfModel a(ReplicaConfig(ReadPrecision::kBf16));
  AmfModel b(ReplicaConfig(ReadPrecision::kBf16));
  TrainSome(a, 300, /*seed=*/99);
  TrainSome(b, 300, /*seed=*/99);
  EXPECT_GT(a.replica_dirty_rows(), 0u);
  const std::size_t dirty_refreshed = a.RefreshReplicas();
  const std::size_t full_refreshed = b.RefreshAllReplicas();
  EXPECT_GT(dirty_refreshed, 0u);
  EXPECT_GE(full_refreshed, dirty_refreshed);
  EXPECT_EQ(a.replica_dirty_rows(), 0u);
  std::vector<double> ra(a.num_services()), rb(b.num_services());
  for (data::UserId u = 0; u < a.num_users(); ++u) {
    a.PredictRowRawShared(u, ra);
    b.PredictRowRawShared(u, rb);
    for (std::size_t s = 0; s < ra.size(); ++s) {
      EXPECT_EQ(ra[s], rb[s]) << "u " << u << " s " << s;
    }
  }
}

TEST(ModelReplicaTest, UnrefreshedReplicaIsStaleUntilRefresh) {
  AmfModel m(ReplicaConfig(ReadPrecision::kFp32));
  TrainSome(m, 200);
  m.RefreshReplicas();
  const double before = m.PredictRawShared(0, 0);
  EXPECT_EQ(m.replica_staleness_updates(), 0u);
  // Mutate the masters without a barrier refresh: the replica readout
  // must hold the epoch-consistent stale value, not a torn fresh one.
  for (int i = 0; i < 50; ++i) m.OnlineUpdate(0, 0, 2.0);
  EXPECT_GT(m.replica_staleness_updates(), 0u);
  EXPECT_GT(m.replica_dirty_rows(), 0u);
  EXPECT_EQ(m.PredictRawShared(0, 0), before) << "stale until the barrier";
  EXPECT_NE(m.PredictRaw(0, 0), before) << "masters did move";
  m.RefreshReplicas();
  EXPECT_NE(m.PredictRawShared(0, 0), before) << "refresh folds the epoch in";
  EXPECT_EQ(m.replica_staleness_updates(), 0u);
}

TEST(ModelReplicaTest, RetirePublishesReplicaInTheSameStep) {
  AmfModel m(ReplicaConfig(ReadPrecision::kBf16));
  TrainSome(m, 300);
  m.RefreshReplicas();
  m.RetireUser(3);
  m.RetireService(7);
  // No refresh in between: the retire itself must have republished the
  // fresh rows, so a full-refreshed copy reads identically.
  AmfModel full = m;
  full.RefreshAllReplicas();
  std::vector<double> got(m.num_services()), want(full.num_services());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    m.PredictRowRawShared(u, got);
    full.PredictRowRawShared(u, want);
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s], want[s]) << "u " << u << " s " << s;
    }
  }
}

TEST(ModelReplicaTest, GrowthPublishesNewRowsImmediately) {
  AmfModel m(ReplicaConfig(ReadPrecision::kFp32));
  TrainSome(m, 100);
  m.RefreshReplicas();
  const std::size_t old_users = m.num_users();
  m.EnsureUser(old_users + 40);   // well past geometric reserve
  m.EnsureService(m.num_services() + 200);
  // Fresh rows must be readable through the replica path right away
  // (registration exclusion covers the grow; no barrier has run yet).
  AmfModel full = m;
  full.RefreshAllReplicas();
  std::vector<double> got(m.num_services()), want(full.num_services());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    m.PredictRowRawShared(u, got);
    full.PredictRowRawShared(u, want);
    for (std::size_t s = 0; s < got.size(); ++s) {
      EXPECT_EQ(got[s], want[s]) << "u " << u << " s " << s;
      EXPECT_TRUE(std::isfinite(got[s]));
    }
  }
}

TEST(ModelReplicaTest, SetReadPrecisionRoundTripRestoresExactFp64Path) {
  AmfModel m(ReplicaConfig());
  TrainSome(m, 400);
  std::vector<double> fp64(m.num_services());
  m.PredictRowRawShared(2, fp64);

  m.SetReadPrecision(ReadPrecision::kFp32);
  EXPECT_TRUE(m.replicas_enabled());
  EXPECT_EQ(m.read_precision(), ReadPrecision::kFp32);
  EXPECT_GT(m.replica_full_refreshes(), 0u);
  m.SetReadPrecision(ReadPrecision::kBf16);
  EXPECT_EQ(m.read_row_bytes(), 64u);  // rank 10 bf16 -> one line per row

  m.SetReadPrecision(ReadPrecision::kFp64);
  EXPECT_FALSE(m.replicas_enabled());
  std::vector<double> back(m.num_services());
  m.PredictRowRawShared(2, back);
  for (std::size_t s = 0; s < fp64.size(); ++s) {
    EXPECT_EQ(back[s], fp64[s]) << "fp64 path must be bit-identical";
  }
}

TEST(ModelReplicaTest, CopyAndAssignCarryReplicas) {
  AmfModel m(ReplicaConfig(ReadPrecision::kBf16));
  TrainSome(m, 200);
  m.RefreshReplicas();
  AmfModel copy = m;
  EXPECT_TRUE(copy.replicas_enabled());
  EXPECT_EQ(copy.PredictRawShared(1, 2), m.PredictRawShared(1, 2));
  AmfModel assigned(ReplicaConfig());
  assigned = m;
  EXPECT_TRUE(assigned.replicas_enabled());
  EXPECT_EQ(assigned.PredictRawShared(1, 2), m.PredictRawShared(1, 2));
}

// --- Trainer integration ---------------------------------------------------

TEST(TrainerReplicaTest, ProcessIncomingRefreshesAtTheBarrier) {
  AmfModel m(ReplicaConfig(ReadPrecision::kBf16));
  OnlineTrainer trainer(m);
  common::Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    trainer.Observe({0, static_cast<data::UserId>(rng.Index(6)),
                     static_cast<data::ServiceId>(rng.Index(12)),
                     0.3 + rng.Uniform(), 0.0});
  }
  trainer.ProcessIncoming();
  EXPECT_GT(m.replica_refreshes(), 0u);
  EXPECT_GT(m.replica_rows_refreshed(), 0u);
  EXPECT_EQ(m.replica_dirty_rows(), 0u) << "barrier drains the dirty set";
  EXPECT_EQ(m.replica_staleness_updates(), 0u);
  // And the refreshed replica readout matches a full rebuild bit-for-bit.
  AmfModel full = m;
  full.RefreshAllReplicas();
  std::vector<double> got(m.num_services()), want(full.num_services());
  for (data::UserId u = 0; u < m.num_users(); ++u) {
    m.PredictRowRawShared(u, got);
    full.PredictRowRawShared(u, want);
    for (std::size_t s = 0; s < got.size(); ++s) EXPECT_EQ(got[s], want[s]);
  }
}

// --- Checkpoint restore keeps the live precision ---------------------------

TEST(ServiceReplicaTest, RestorePreservesLiveReadPrecision) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/replica_restore_test";
  fs::remove_all(dir);

  adapt::PredictionServiceConfig cfg{MakeResponseTimeConfig(/*seed=*/5),
                                     TrainerConfig{}, 1};
  adapt::QoSPredictionService service(cfg);
  CheckpointManagerConfig ckpt;
  ckpt.directory = dir;
  ckpt.interval_seconds = 0.0;  // checkpoint every tick
  service.EnableCheckpoints(ckpt);
  common::Rng rng(9);
  for (int i = 0; i < 128; ++i) {
    service.ReportObservation({0, static_cast<data::UserId>(rng.Index(6)),
                               static_cast<data::ServiceId>(rng.Index(12)),
                               0.3 + rng.Uniform(), 1.0});
  }
  service.Tick(10.0);

  service.set_read_precision(ReadPrecision::kBf16);
  ASSERT_EQ(service.read_precision(), ReadPrecision::kBf16);
  const double before = *service.PredictQoS(1, 3);

  // Checkpoints do not serialize read_precision (the knob is a property
  // of this deployment, not of the learned state), so a restore must
  // re-apply the live setting rather than silently reverting to fp64.
  ASSERT_TRUE(service.RestoreFromLatestCheckpoint());
  EXPECT_EQ(service.read_precision(), ReadPrecision::kBf16);
  const double after = *service.PredictQoS(1, 3);
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_NEAR(after, before, std::abs(before) * 5e-2 + 1e-9);
  fs::remove_all(dir);
}

// --- Config plumbing -------------------------------------------------------

TEST(ReadPrecisionTest, ParseAndToString) {
  EXPECT_EQ(ParseReadPrecision("fp64"), ReadPrecision::kFp64);
  EXPECT_EQ(ParseReadPrecision("fp32"), ReadPrecision::kFp32);
  EXPECT_EQ(ParseReadPrecision("bf16"), ReadPrecision::kBf16);
  EXPECT_FALSE(ParseReadPrecision("fp16").has_value());
  EXPECT_FALSE(ParseReadPrecision("").has_value());
  EXPECT_STREQ(ToString(ReadPrecision::kFp64), "fp64");
  EXPECT_STREQ(ToString(ReadPrecision::kFp32), "fp32");
  EXPECT_STREQ(ToString(ReadPrecision::kBf16), "bf16");
}

}  // namespace
}  // namespace amf::core

#include "data/csv_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace amf::data {
namespace {

TEST(CsvIoTest, WriteReadRoundTrip) {
  InMemoryDataset src(3, 4, 2);
  src.SetValue(QoSAttribute::kResponseTime, 0, 1, 0, 1.5);
  src.SetValue(QoSAttribute::kResponseTime, 2, 3, 1, 0.25);
  src.SetValue(QoSAttribute::kResponseTime, 1, 0, 0, 7.0);

  std::stringstream ss;
  WriteTriplets(ss, src, QoSAttribute::kResponseTime);

  InMemoryDataset dst(3, 4, 2);
  ReadTriplets(ss, dst, QoSAttribute::kResponseTime);
  EXPECT_DOUBLE_EQ(dst.Value(QoSAttribute::kResponseTime, 0, 1, 0), 1.5);
  EXPECT_DOUBLE_EQ(dst.Value(QoSAttribute::kResponseTime, 2, 3, 1), 0.25);
  EXPECT_DOUBLE_EQ(dst.Value(QoSAttribute::kResponseTime, 1, 0, 0), 7.0);
  EXPECT_FALSE(dst.Has(QoSAttribute::kResponseTime, 0, 0, 0));
}

TEST(CsvIoTest, CommentsAndBlankLinesSkipped) {
  std::stringstream ss("# header\n\n0 0 0 2.5\n  \n# trailing\n");
  InMemoryDataset d(1, 1, 1);
  ReadTriplets(ss, d, QoSAttribute::kThroughput);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kThroughput, 0, 0, 0), 2.5);
}

TEST(CsvIoTest, AcceptsCommasAndTabs) {
  std::stringstream ss("0,1,0,3.5\n1\t0\t0\t4.5\n");
  InMemoryDataset d(2, 2, 1);
  ReadTriplets(ss, d, QoSAttribute::kResponseTime);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 0, 1, 0), 3.5);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 1, 0, 0), 4.5);
}

TEST(CsvIoTest, MalformedLineThrows) {
  InMemoryDataset d(1, 1, 1);
  std::stringstream bad_fields("0 0 0\n");
  EXPECT_THROW(ReadTriplets(bad_fields, d, QoSAttribute::kResponseTime),
               common::CheckError);
  std::stringstream bad_value("0 0 0 xyz\n");
  EXPECT_THROW(ReadTriplets(bad_value, d, QoSAttribute::kResponseTime),
               common::CheckError);
}

TEST(CsvIoTest, OutOfBoundsIndexThrows) {
  InMemoryDataset d(1, 1, 1);
  std::stringstream ss("5 0 0 1.0\n");
  EXPECT_THROW(ReadTriplets(ss, d, QoSAttribute::kResponseTime),
               common::CheckError);
}

TEST(CsvIoTest, SliceTripletsRoundTrip) {
  SparseMatrix m(3, 3);
  m.Set(0, 2, 1.0);
  m.Set(2, 1, 2.0);
  std::stringstream ss;
  WriteSliceTriplets(ss, m, 4);
  const SparseMatrix back = ReadSliceTriplets(ss, 3, 3, 4);
  EXPECT_EQ(back.nnz(), 2u);
  EXPECT_DOUBLE_EQ(*back.Get(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(*back.Get(2, 1), 2.0);
}

TEST(CsvIoTest, SliceFilterIgnoresOtherSlices) {
  std::stringstream ss("0 0 1 5.0\n0 1 2 6.0\n");
  const SparseMatrix m = ReadSliceTriplets(ss, 2, 2, 2);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(*m.Get(0, 1), 6.0);
}

TEST(CsvIoTest, FileRoundTrip) {
  InMemoryDataset src(2, 2, 1);
  src.SetValue(QoSAttribute::kResponseTime, 1, 1, 0, 9.0);
  const std::string path =
      ::testing::TempDir() + "/amf_csv_io_test.triplets";
  WriteTripletsFile(path, src, QoSAttribute::kResponseTime);
  InMemoryDataset dst(2, 2, 1);
  ReadTripletsFile(path, dst, QoSAttribute::kResponseTime);
  EXPECT_DOUBLE_EQ(dst.Value(QoSAttribute::kResponseTime, 1, 1, 0), 9.0);
}

TEST(CsvIoLenientTest, SkipsAndCountsMalformedLines) {
  // Two good records, one short line, one unparsable value, one
  // out-of-bounds index; lenient mode keeps the good ones.
  std::stringstream ss("0 0 0 1.0\nbroken line\n0 1 0 xyz\n9 0 0 2.0\n"
                       "1 1 0 3.0\n");
  InMemoryDataset d(2, 2, 1);
  TripletReadOptions opts;
  opts.warn = false;
  const TripletReadStats stats =
      ReadTriplets(ss, d, QoSAttribute::kResponseTime, opts);
  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.bad_lines, 3u);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.Value(QoSAttribute::kResponseTime, 1, 1, 0), 3.0);
}

TEST(CsvIoLenientTest, BadLineCapTrips) {
  std::stringstream ss("junk\nmore junk\neven more\n0 0 0 1.0\n");
  InMemoryDataset d(1, 1, 1);
  TripletReadOptions opts;
  opts.warn = false;
  opts.max_bad_lines = 2;
  EXPECT_THROW(ReadTriplets(ss, d, QoSAttribute::kResponseTime, opts),
               common::CheckError);
}

TEST(CsvIoLenientTest, StrictOptionMatchesLegacyBehavior) {
  std::stringstream ss("0 0 0 1.0\nbroken\n");
  InMemoryDataset d(1, 1, 1);
  TripletReadOptions opts;
  opts.strict = true;
  EXPECT_THROW(ReadTriplets(ss, d, QoSAttribute::kResponseTime, opts),
               common::CheckError);
}

TEST(CsvIoLenientTest, FileOverloadReturnsStats) {
  const std::string path =
      ::testing::TempDir() + "/amf_csv_io_lenient.triplets";
  {
    std::ofstream os(path);
    os << "0 0 0 4.0\ngarbage\n";
  }
  InMemoryDataset d(1, 1, 1);
  TripletReadOptions opts;
  opts.warn = false;
  const TripletReadStats stats =
      ReadTripletsFile(path, d, QoSAttribute::kResponseTime, opts);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.bad_lines, 1u);
}

TEST(CsvIoTest, MissingFileThrows) {
  InMemoryDataset d(1, 1, 1);
  EXPECT_THROW(
      ReadTripletsFile("/nonexistent/path.triplets", d,
                       QoSAttribute::kResponseTime),
      common::CheckError);
}

}  // namespace
}  // namespace amf::data

#include "cf/upcc.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "tests/test_util.h"

namespace amf::cf {
namespace {

TEST(UpccTest, PredictBeforeFitThrows) {
  Upcc upcc;
  EXPECT_THROW(upcc.Predict(0, 0), common::CheckError);
}

TEST(UpccTest, Name) { EXPECT_EQ(Upcc().name(), "UPCC"); }

TEST(UpccTest, ExactForPerfectlyCorrelatedUsers) {
  // User 1 = user 0 + 1 on every co-observed service; with PCC = 1 the
  // deviation-from-mean formula reconstructs user 0's held-out value
  // exactly.
  data::SparseMatrix m(2, 5);
  for (std::size_t c = 0; c < 5; ++c) m.Set(1, c, 2.0 + double(c));
  for (std::size_t c = 0; c < 4; ++c) m.Set(0, c, 1.0 + double(c));
  NeighborhoodConfig cfg;
  cfg.significance_gamma = 0;
  Upcc upcc(cfg);
  upcc.Fit(m);
  // user 0 mean over observed = 2.5; neighbor (user 1) mean = 4.0,
  // value at service 4 = 6 -> prediction = 2.5 + 1*(6-4)/1 = 4.5.
  // Ground truth by the pattern would be 5; but the mean-offset estimate
  // is the defined UPCC output:
  EXPECT_NEAR(upcc.Predict(0, 4), 4.5, 1e-9);
}

TEST(UpccTest, FallsBackToUserMeanWithoutNeighbors) {
  data::SparseMatrix m(3, 3);
  m.Set(0, 0, 2.0);
  m.Set(0, 1, 4.0);
  // Service 2 observed by nobody else; user 0 has no correlated peers.
  Upcc upcc;
  upcc.Fit(m);
  EXPECT_DOUBLE_EQ(upcc.Predict(0, 2), 3.0);
}

TEST(UpccTest, FallsBackToServiceMeanForColdUser) {
  data::SparseMatrix m(3, 2);
  m.Set(0, 0, 2.0);
  m.Set(1, 0, 4.0);
  // User 2 never observed anything -> fall back to service mean.
  Upcc upcc;
  upcc.Fit(m);
  EXPECT_DOUBLE_EQ(upcc.Predict(2, 0), 3.0);
}

TEST(UpccTest, ConfidenceInUnitRange) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  Upcc upcc;
  upcc.Fit(split.train);
  int with_conf = 0;
  for (std::size_t i = 0; i < 50 && i < split.test.size(); ++i) {
    const auto p = upcc.PredictWithConfidence(split.test[i].user,
                                              split.test[i].service);
    if (p) {
      ++with_conf;
      EXPECT_GT(p->confidence, 0.0);
      EXPECT_LE(p->confidence, 1.0 + 1e-9);
    }
  }
  EXPECT_GT(with_conf, 0);
}

TEST(UpccTest, BeatsGlobalMeanOnStructuredData) {
  const linalg::Matrix slice = testutil::SmallRtSlice();
  const data::TrainTestSplit split = testutil::Split(slice, 0.4);
  Upcc upcc;
  upcc.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(upcc, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  EXPECT_LT(m.mae, baseline.mae);
  EXPECT_GT(m.mae, 0.0);
}

TEST(UpccTest, PredictionsAreFinite) {
  const linalg::Matrix slice = testutil::SmallRtSlice(20, 50);
  const data::TrainTestSplit split = testutil::Split(slice, 0.1);
  Upcc upcc;
  upcc.Fit(split.train);
  for (const auto& s : split.test) {
    EXPECT_TRUE(std::isfinite(upcc.Predict(s.user, s.service)));
  }
}

}  // namespace
}  // namespace amf::cf

// Property-style parameterized sweeps over the AMF invariants:
// every (alpha, eta, beta, rank) combination must keep the update rule
// stable (finite factors, bounded predictions, non-negative errors) and
// the accuracy ordering of the paper must hold across seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "core/amf_predictor.h"
#include "tests/test_util.h"

namespace amf::core {
namespace {

struct SweepParam {
  double alpha;
  double eta;
  double beta;
  std::size_t rank;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << "alpha=" << p.alpha << " eta=" << p.eta << " beta=" << p.beta
            << " rank=" << p.rank;
}

class AmfInvariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AmfInvariantSweep, UpdatesStayFiniteAndBounded) {
  const SweepParam p = GetParam();
  AmfConfig cfg = MakeResponseTimeConfig(11);
  cfg.transform.alpha = p.alpha;
  cfg.learn_rate = p.eta;
  cfg.beta = p.beta;
  cfg.rank = p.rank;
  AmfModel model(cfg);

  common::Rng rng(42);
  for (int i = 0; i < 3000; ++i) {
    const auto u = static_cast<data::UserId>(rng.Index(15));
    const auto s = static_cast<data::ServiceId>(rng.Index(40));
    // Raw values spanning the whole admissible range, incl. the extremes.
    const double raw = rng.Bernoulli(0.05)
                           ? (rng.Bernoulli(0.5) ? 0.0 : 20.0)
                           : rng.LogNormal(-0.2, 1.0);
    const double e = model.OnlineUpdate(u, s, raw);
    ASSERT_TRUE(std::isfinite(e)) << GetParam() << " iter " << i;
    ASSERT_GE(e, 0.0);
  }
  for (data::UserId u = 0; u < model.num_users(); ++u) {
    ASSERT_GE(model.UserError(u), 0.0);
    for (double v : model.UserFactors(u)) ASSERT_TRUE(std::isfinite(v));
    for (data::ServiceId s = 0; s < model.num_services(); ++s) {
      const double pred = model.PredictRaw(u, s);
      ASSERT_TRUE(std::isfinite(pred));
      ASSERT_GE(pred, 0.0);
      ASSERT_LE(pred, cfg.transform.r_max + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, AmfInvariantSweep,
    ::testing::Values(SweepParam{-0.007, 0.8, 0.3, 10},
                      SweepParam{-0.05, 0.8, 0.3, 10},
                      SweepParam{1.0, 0.8, 0.3, 10},
                      SweepParam{0.0, 0.8, 0.3, 10},
                      SweepParam{-0.007, 0.2, 0.3, 10},
                      SweepParam{-0.007, 1.5, 0.3, 10},
                      SweepParam{-0.007, 0.8, 0.05, 10},
                      SweepParam{-0.007, 0.8, 1.0, 10},
                      SweepParam{-0.007, 0.8, 0.3, 2},
                      SweepParam{-0.007, 0.8, 0.3, 32}));

class AmfSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AmfSeedSweep, ConvergesAcrossSeeds) {
  const linalg::Matrix slice = testutil::SmallRtSlice(30, 90, GetParam());
  const data::TrainTestSplit split =
      testutil::Split(slice, 0.3, GetParam() + 1);
  AmfPredictor amf(MakeResponseTimeConfig(GetParam()));
  amf.Fit(split.train);
  const eval::Metrics m = eval::EvaluatePredictor(amf, split.test);
  const eval::Metrics baseline = testutil::GlobalMeanMetrics(split);
  // Robustness: no seed may produce a diverged or useless model.
  EXPECT_LT(m.mre, baseline.mre) << "seed " << GetParam();
  EXPECT_LT(m.mre, 0.6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmfSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class AmfDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(AmfDensitySweep, FiniteAtAnyDensity) {
  const linalg::Matrix slice = testutil::SmallRtSlice(25, 70);
  const data::TrainTestSplit split = testutil::Split(slice, GetParam());
  AmfPredictor amf(MakeResponseTimeConfig(1));
  amf.Fit(split.train);
  for (const auto& s : split.test) {
    ASSERT_TRUE(std::isfinite(amf.Predict(s.user, s.service)));
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, AmfDensitySweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.9));

TEST(AmfGradientClipProperty, LinearNormalizationDoesNotCollapse) {
  // Regression: with alpha = 1 the relative-error gradient 1/r^2 explodes
  // on skewed data (normalized values near 0); without clipping the model
  // spirals into sigmoid saturation and predicts ~0 everywhere (MRE ~ 1).
  const linalg::Matrix slice = testutil::SmallRtSlice(60, 300, 21);
  const data::TrainTestSplit split = testutil::Split(slice, 0.15);
  AmfConfig cfg = MakeResponseTimeConfig(1);
  cfg.transform.alpha = 1.0;
  AmfPredictor clipped(cfg);
  clipped.Fit(split.train);
  const double clipped_mre =
      eval::EvaluatePredictor(clipped, split.test).mre;
  EXPECT_LT(clipped_mre, 0.85);

  AmfConfig unclipped_cfg = cfg;
  unclipped_cfg.gradient_clip = 0.0;
  AmfPredictor unclipped(unclipped_cfg);
  unclipped.Fit(split.train);
  const double unclipped_mre =
      eval::EvaluatePredictor(unclipped, split.test).mre;
  // The clip must not hurt; on larger/skewed data it is the difference
  // between ~0.45 and ~1.0.
  EXPECT_LE(clipped_mre, unclipped_mre + 0.05);
}

TEST(AmfGradientClipProperty, NoEffectOnTunedAlpha) {
  const linalg::Matrix slice = testutil::SmallRtSlice(40, 150, 22);
  const data::TrainTestSplit split = testutil::Split(slice, 0.2);
  AmfConfig with_clip = MakeResponseTimeConfig(3);
  AmfConfig no_clip = MakeResponseTimeConfig(3);
  no_clip.gradient_clip = 0.0;
  AmfPredictor a(with_clip), b(no_clip);
  a.Fit(split.train);
  b.Fit(split.train);
  const double mre_a = eval::EvaluatePredictor(a, split.test).mre;
  const double mre_b = eval::EvaluatePredictor(b, split.test).mre;
  EXPECT_NEAR(mre_a, mre_b, 0.02);
}

TEST(AmfMonotonicityProperty, DenserTrainingIsNotWorse) {
  // Fig. 12 property: error decreases (weakly) with density. Compare the
  // sparsest and densest settings with shared seeds.
  const linalg::Matrix slice = testutil::SmallRtSlice(40, 120, 7);
  const data::TrainTestSplit sparse = testutil::Split(slice, 0.05, 3);
  const data::TrainTestSplit dense = testutil::Split(slice, 0.5, 3);
  AmfPredictor amf_sparse(MakeResponseTimeConfig(1));
  amf_sparse.Fit(sparse.train);
  AmfPredictor amf_dense(MakeResponseTimeConfig(1));
  amf_dense.Fit(dense.train);
  const double mre_sparse =
      eval::EvaluatePredictor(amf_sparse, sparse.test).mre;
  const double mre_dense = eval::EvaluatePredictor(amf_dense, dense.test).mre;
  EXPECT_LT(mre_dense, mre_sparse);
}

}  // namespace
}  // namespace amf::core

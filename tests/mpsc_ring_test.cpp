#include "common/mpsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace amf::common {
namespace {

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRingBuffer<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRingBuffer<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRingBuffer<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRingBuffer<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRingBuffer<int>(1024).capacity(), 1024u);
}

TEST(MpscRingTest, FifoSingleThreaded) {
  MpscRingBuffer<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(out));
}

TEST(MpscRingTest, FullRingRejectsPush) {
  MpscRingBuffer<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int out;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.TryPush(99));  // freed slot is reusable
}

TEST(MpscRingTest, WrapsAroundManyTimes) {
  MpscRingBuffer<int> ring(4);
  int out;
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(ring.TryPush(round));
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, round);
  }
  EXPECT_EQ(ring.SizeApprox(), 0u);
}

TEST(MpscRingTest, MultiProducerDeliversEverythingInPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 5000;
  MpscRingBuffer<std::uint32_t> ring(256);

  // Value encodes (producer, sequence); the consumer checks that each
  // producer's values arrive in its push order even under contention.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(p) << 24 | i;
        while (!ring.TryPush(v)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint32_t> next(kProducers, 0);
  std::size_t received = 0;
  std::uint32_t v;
  while (received < kProducers * kPerProducer) {
    if (!ring.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::size_t p = v >> 24;
    const std::uint32_t seq = v & 0xffffffu;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next[p]) << "producer " << p << " reordered";
    next[p] = seq + 1;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.TryPop(v));
  for (std::size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

TEST(MpscRingTest, DropCountingUnderOverflowPressure) {
  // Producers race a deliberately tiny ring with no consumer: accepted +
  // rejected must equal attempted, and accepted can never exceed capacity.
  MpscRingBuffer<int> ring(8);
  constexpr int kAttempts = 1000;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        if (ring.TryPush(i)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(accepted.load() + rejected.load(), 3 * kAttempts);
  EXPECT_LE(accepted.load(), static_cast<int>(ring.capacity()));
}

}  // namespace
}  // namespace amf::common

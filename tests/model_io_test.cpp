#include "core/model_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace amf::core {
namespace {

AmfModel TrainedModel() {
  AmfModel m(MakeResponseTimeConfig(/*seed=*/9));
  for (int i = 0; i < 200; ++i) {
    m.OnlineUpdate(i % 4, i % 7, 0.5 + 0.2 * (i % 5));
  }
  return m;
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  const AmfModel original = TrainedModel();
  std::stringstream ss;
  SaveModel(ss, original);
  const AmfModel loaded = LoadModel(ss);

  EXPECT_EQ(loaded.num_users(), original.num_users());
  EXPECT_EQ(loaded.num_services(), original.num_services());
  EXPECT_EQ(loaded.config().rank, original.config().rank);
  EXPECT_DOUBLE_EQ(loaded.config().learn_rate,
                   original.config().learn_rate);
  EXPECT_DOUBLE_EQ(loaded.config().transform.alpha,
                   original.config().transform.alpha);
  EXPECT_EQ(loaded.config().adaptive_weights,
            original.config().adaptive_weights);

  for (data::UserId u = 0; u < original.num_users(); ++u) {
    EXPECT_DOUBLE_EQ(loaded.UserError(u), original.UserError(u));
    for (std::size_t k = 0; k < original.config().rank; ++k) {
      EXPECT_DOUBLE_EQ(loaded.UserFactors(u)[k], original.UserFactors(u)[k]);
    }
  }
  for (data::ServiceId s = 0; s < original.num_services(); ++s) {
    EXPECT_DOUBLE_EQ(loaded.ServiceError(s), original.ServiceError(s));
  }
  // Predictions identical.
  for (data::UserId u = 0; u < original.num_users(); ++u) {
    for (data::ServiceId s = 0; s < original.num_services(); ++s) {
      EXPECT_DOUBLE_EQ(loaded.PredictRaw(u, s), original.PredictRaw(u, s));
    }
  }
}

TEST(ModelIoTest, LoadedModelKeepsLearning) {
  const AmfModel original = TrainedModel();
  std::stringstream ss;
  SaveModel(ss, original);
  AmfModel loaded = LoadModel(ss);
  const double err = loaded.OnlineUpdate(0, 0, 1.0);
  EXPECT_TRUE(std::isfinite(err));
}

TEST(ModelIoTest, EmptyModelRoundTrips) {
  const AmfModel empty(MakeThroughputConfig(3));
  std::stringstream ss;
  SaveModel(ss, empty);
  const AmfModel loaded = LoadModel(ss);
  EXPECT_EQ(loaded.num_users(), 0u);
  EXPECT_EQ(loaded.num_services(), 0u);
  EXPECT_DOUBLE_EQ(loaded.config().transform.r_max, 7000.0);
}

TEST(ModelIoTest, BadMagicThrows) {
  std::stringstream ss("NOT_A_MODEL 1\n");
  EXPECT_THROW(LoadModel(ss), common::CheckError);
}

TEST(ModelIoTest, BadVersionThrows) {
  std::stringstream ss("AMF_MODEL 99\n");
  EXPECT_THROW(LoadModel(ss), common::CheckError);
}

TEST(ModelIoTest, TruncatedPayloadThrows) {
  const AmfModel original = TrainedModel();
  std::stringstream ss;
  SaveModel(ss, original);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(LoadModel(truncated), common::CheckError);
}

TEST(SampleStoreIoTest, RoundTrip) {
  SampleStore store;
  store.Upsert({1, 2, 3, 4.5, 6.7});
  store.Upsert({0, 0, 0, 0.25, 100.0});
  std::stringstream ss;
  SaveSampleStore(ss, store);
  SampleStore loaded;
  LoadSampleStore(ss, loaded);
  EXPECT_EQ(loaded.size(), 2u);
  const auto a = loaded.Get(2, 3);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->slice, 1u);
  EXPECT_DOUBLE_EQ(a->value, 4.5);
  EXPECT_DOUBLE_EQ(a->timestamp, 6.7);
  EXPECT_TRUE(loaded.Contains(0, 0));
}

TEST(SampleStoreIoTest, EmptyStoreRoundTrips) {
  SampleStore store;
  std::stringstream ss;
  SaveSampleStore(ss, store);
  SampleStore loaded;
  LoadSampleStore(ss, loaded);
  EXPECT_TRUE(loaded.empty());
}

TEST(SampleStoreIoTest, LoadUpsertsIntoExisting) {
  SampleStore store;
  store.Upsert({0, 1, 1, 1.0, 0.0});
  std::stringstream ss;
  SaveSampleStore(ss, store);
  SampleStore target;
  target.Upsert({0, 1, 1, 9.0, 5.0});  // will be overwritten
  target.Upsert({0, 2, 2, 3.0, 0.0});  // kept
  LoadSampleStore(ss, target);
  EXPECT_EQ(target.size(), 2u);
  EXPECT_DOUBLE_EQ(target.Get(1, 1)->value, 1.0);
}

TEST(SampleStoreIoTest, TruncatedInputThrows) {
  std::stringstream ss("AMF_SAMPLES 1 3\n0 0 0 1.0 0.0\n");
  SampleStore store;
  EXPECT_THROW(LoadSampleStore(ss, store), common::CheckError);
}

TEST(SampleStoreIoTest, BadHeaderThrows) {
  std::stringstream ss("NOT_SAMPLES 1 0\n");
  SampleStore store;
  EXPECT_THROW(LoadSampleStore(ss, store), common::CheckError);
}

TEST(ModelIoTest, FileRoundTrip) {
  const AmfModel original = TrainedModel();
  const std::string path = ::testing::TempDir() + "/amf_model_io_test.model";
  SaveModelFile(path, original);
  const AmfModel loaded = LoadModelFile(path);
  EXPECT_DOUBLE_EQ(loaded.PredictRaw(1, 1), original.PredictRaw(1, 1));
}

TEST(ModelIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadModelFile("/nonexistent/model.txt"), common::CheckError);
}

}  // namespace
}  // namespace amf::core

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"

namespace amf::common {
namespace {

TEST(SplitMix64Test, AdvancesStateAndMixes) {
  std::uint64_t state = 0;
  const std::uint64_t a = SplitMix64(state);
  const std::uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

TEST(SplitMix64Test, DeterministicForSameState) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

TEST(DeriveSeedTest, DistinctStreamsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    seeds.insert(DeriveSeed(7, i));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(DeriveSeedTest, NearbyMasterSeedsDecorrelate) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

TEST(RngTest, DeterministicSequences) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, IndexStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(7), 7u);
  }
}

TEST(RngTest, IndexZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.Index(0), CheckError);
}

TEST(RngTest, IntCoversInclusiveRange) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.Int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(18);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(20);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(21);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(22);
  const auto perm = rng.Permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(24);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(25);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleTooManyThrows) {
  Rng rng(26);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), CheckError);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng childA = parent.Fork(1);
  Rng childB = parent.Fork(1);
  Rng childC = parent.Fork(2);
  EXPECT_DOUBLE_EQ(childA.Uniform(), childB.Uniform());
  // Forking does not disturb the parent relative to a fresh instance.
  Rng fresh(42);
  EXPECT_DOUBLE_EQ(parent.Uniform(), fresh.Uniform());
  (void)childC;
}

}  // namespace
}  // namespace amf::common
